"""Cooper's quantifier-elimination algorithm (Theorem 4's normal form).

The paper relies on the classical fact (Presburger 1929; the form used here
is due to Cooper) that every Presburger formula is equivalent to a
quantifier-free formula in the *extended* language with the congruence
relations ``≡_m``.  The Theorem 5 compiler consumes exactly that normal
form, so this module is the bridge from arbitrary Presburger formulas to
population protocols.

Implementation notes
--------------------
Elimination proceeds innermost-quantifier-first.  For one ``∃x φ`` with a
quantifier-free NNF body:

1. Negations are pushed into atoms (``¬(t<0) → -t-1<0``,
   ``¬(t=0) → t<0 ∨ -t<0``, ``¬(m|t) → ∨_{r=1}^{m-1} m|(t+r)``) and
   equalities are split into two inequalities, leaving only ``Lt`` and
   ``Dvd`` atoms.
2. The coefficients of ``x`` are normalized to ``±δ`` (``δ`` their lcm),
   then ``δ·x`` is renamed to a fresh unit-coefficient variable with the
   divisibility constraint ``δ | x``.
3. With ``L`` the lcm of all ``Dvd`` moduli involving ``x`` and ``B`` the
   set of lower-bound terms (atoms ``-x + t < 0``), Cooper's theorem gives

   ``∃x φ(x)  ⇔  ∨_{j=1}^{L} φ_{-∞}(j) ∨ ∨_{b∈B} ∨_{j=1}^{L} φ(b + j)``

   where ``φ_{-∞}`` replaces upper-bound atoms by true and lower-bound
   atoms by false.
4. The resulting disjunction is aggressively simplified (constant folding,
   flattening, deduplication).
"""

from __future__ import annotations

from repro.presburger.formulas import (
    FALSE,
    TRUE,
    And,
    Dvd,
    Eq,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Lt,
    Not,
    Or,
    TrueFormula,
    is_quantifier_free,
    substitute,
)
from repro.presburger.terms import LinearTerm, Var
from repro.util.mathutil import lcm_many


# -- Simplification -----------------------------------------------------------


def simplify(formula: Formula) -> Formula:
    """Constant-fold, flatten, and deduplicate a formula (no QE)."""
    if isinstance(formula, (TrueFormula, FalseFormula)):
        return formula
    if isinstance(formula, Lt):
        if formula.term.is_constant():
            return TRUE if formula.term.constant < 0 else FALSE
        return formula
    if isinstance(formula, Eq):
        if formula.term.is_constant():
            return TRUE if formula.term.constant == 0 else FALSE
        return formula
    if isinstance(formula, Dvd):
        term = formula.term
        if term.is_constant():
            return TRUE if term.constant % formula.modulus == 0 else FALSE
        # Reduce coefficients and constant modulo m; drop vanished variables.
        m = formula.modulus
        coeffs = {v: c % m for v, c in term.coeffs.items() if c % m}
        constant = term.constant % m
        if not coeffs:
            return TRUE if constant == 0 else FALSE
        return Dvd(m, LinearTerm(coeffs, constant))
    if isinstance(formula, Not):
        inner = simplify(formula.arg)
        if isinstance(inner, TrueFormula):
            return FALSE
        if isinstance(inner, FalseFormula):
            return TRUE
        if isinstance(inner, Not):
            return inner.arg
        return Not(inner)
    if isinstance(formula, (And, Or)):
        is_and = isinstance(formula, And)
        absorbing = FALSE if is_and else TRUE
        neutral = TRUE if is_and else FALSE
        flat: list[Formula] = []
        seen: set = set()
        for arg in formula.args:
            arg = simplify(arg)
            if arg == absorbing:
                return absorbing
            if arg == neutral:
                continue
            # Flatten nested same-type connectives.
            parts = arg.args if isinstance(arg, type(formula)) else (arg,)
            for part in parts:
                if part == absorbing:
                    return absorbing
                if part == neutral:
                    continue
                if part not in seen:
                    seen.add(part)
                    flat.append(part)
        if not flat:
            return neutral
        if len(flat) == 1:
            return flat[0]
        return And(flat) if is_and else Or(flat)
    if isinstance(formula, (Exists, Forall)):
        body = simplify(formula.body)
        if isinstance(body, (TrueFormula, FalseFormula)):
            return body
        if formula.var not in body.free_variables():
            return body
        return type(formula)(formula.var, body)
    raise TypeError(f"unknown formula node {formula!r}")


# -- Negation-normal form with atomic negation ---------------------------------


def negate_atom(atom: Formula) -> Formula:
    """Negation of an atom, expressed without ``Not`` (over the integers)."""
    if isinstance(atom, Lt):
        # not(t < 0)  <=>  t >= 0  <=>  -t - 1 < 0
        return Lt(-atom.term - 1)
    if isinstance(atom, Eq):
        return Or((Lt(atom.term), Lt(-atom.term)))
    if isinstance(atom, Dvd):
        return Or(tuple(
            Dvd(atom.modulus, atom.term + r) for r in range(1, atom.modulus)))
    if isinstance(atom, TrueFormula):
        return FALSE
    if isinstance(atom, FalseFormula):
        return TRUE
    raise TypeError(f"not an atom: {atom!r}")


def to_nnf(formula: Formula, *, split_eq: bool = False) -> Formula:
    """Push negations to atoms and remove them; optionally split equalities.

    With ``split_eq=True`` every ``Eq(t)`` becomes ``Lt(t-1) & Lt(-t-1)``
    (``t <= 0 and t >= 0``), leaving only ``Lt``/``Dvd`` atoms — the form
    Cooper's elimination step works on.  Requires a quantifier-free input.
    """
    if isinstance(formula, (Exists, Forall)):
        raise ValueError("to_nnf expects a quantifier-free formula")
    if isinstance(formula, (TrueFormula, FalseFormula)):
        return formula
    if isinstance(formula, Eq) and split_eq:
        return And((Lt(formula.term - 1), Lt(-formula.term - 1)))
    if isinstance(formula, (Lt, Eq, Dvd)):
        return formula
    if isinstance(formula, And):
        return And(to_nnf(a, split_eq=split_eq) for a in formula.args)
    if isinstance(formula, Or):
        return Or(to_nnf(a, split_eq=split_eq) for a in formula.args)
    if isinstance(formula, Not):
        inner = formula.arg
        if isinstance(inner, Not):
            return to_nnf(inner.arg, split_eq=split_eq)
        if isinstance(inner, And):
            return Or(to_nnf(Not(a), split_eq=split_eq) for a in inner.args)
        if isinstance(inner, Or):
            return And(to_nnf(Not(a), split_eq=split_eq) for a in inner.args)
        if isinstance(inner, (Lt, Eq, Dvd, TrueFormula, FalseFormula)):
            return to_nnf(negate_atom(inner), split_eq=split_eq)
        raise TypeError(f"unknown formula node {inner!r}")
    raise TypeError(f"unknown formula node {formula!r}")


# -- Cooper's elimination of one existential quantifier --------------------------


def _map_atoms(formula: Formula, mapper) -> Formula:
    """Rebuild an NNF formula by transforming each atom."""
    if isinstance(formula, (TrueFormula, FalseFormula)):
        return formula
    if isinstance(formula, (Lt, Dvd, Eq)):
        return mapper(formula)
    if isinstance(formula, And):
        return And(_map_atoms(a, mapper) for a in formula.args)
    if isinstance(formula, Or):
        return Or(_map_atoms(a, mapper) for a in formula.args)
    raise TypeError(f"expected NNF without Not/quantifiers, got {formula!r}")


def eliminate_exists(var: Var, body: Formula) -> Formula:
    """Quantifier-free formula equivalent to ``∃ var. body``.

    ``body`` must be quantifier-free; the result is in the extended
    language (``Lt``/``Dvd`` atoms plus Boolean structure).
    """
    if not is_quantifier_free(body):
        raise ValueError("eliminate_exists expects a quantifier-free body")
    body = simplify(to_nnf(simplify(body), split_eq=True))
    if isinstance(body, (TrueFormula, FalseFormula)):
        return body
    if var not in body.free_variables():
        return body

    # Step 1: normalize x-coefficients to +-delta.
    coefficients = []

    def collect(node: Formula) -> None:
        if isinstance(node, (Lt, Dvd)):
            c = node.term.coefficient(var)
            if c:
                coefficients.append(c)
        elif isinstance(node, (And, Or)):
            for arg in node.args:
                collect(arg)

    collect(body)
    if not coefficients:
        return body
    delta = lcm_many(coefficients)

    def normalize(atom: Formula) -> Formula:
        if isinstance(atom, Lt):
            c = atom.term.coefficient(var)
            if not c:
                return atom
            factor = delta // abs(c)
            return Lt(atom.term * factor)  # coefficient of var becomes +-delta
        if isinstance(atom, Dvd):
            c = atom.term.coefficient(var)
            if not c:
                return atom
            factor = delta // abs(c)
            term = atom.term * factor
            modulus = atom.modulus * factor
            if term.coefficient(var) < 0:
                term = -term  # m | t  <=>  m | -t
            # modulus >= 2 always: atom.modulus >= 2 and factor >= 1.
            return Dvd(modulus, term)
        raise TypeError(f"unexpected atom {atom!r}")

    body = _map_atoms(body, normalize)

    # Step 2: substitute y = delta * x (y ranges over multiples of delta).
    # Every atom now has var-coefficient exactly +-delta; rewrite it to
    # coefficient +-1 on the same variable name and conjoin delta | var.
    def unitize(atom: Formula) -> Formula:
        if isinstance(atom, (Lt, Dvd)):
            c = atom.term.coefficient(var)
            if not c:
                return atom
            assert abs(c) == delta, (atom, delta)
            unit = 1 if c > 0 else -1
            new_term = atom.term.drop(var) + LinearTerm({var: unit})
            if isinstance(atom, Lt):
                return Lt(new_term)
            return Dvd(atom.modulus, new_term)
        raise TypeError(f"unexpected atom {atom!r}")

    body = _map_atoms(body, unitize)
    if delta > 1:
        body = And((body, Dvd(delta, LinearTerm.variable(var))))

    # Step 3: Cooper's disjunction over the lower bounds.
    moduli = [1]
    lower_bounds: list[LinearTerm] = []

    def scan(node: Formula) -> None:
        if isinstance(node, Lt):
            c = node.term.coefficient(var)
            if c == -1:
                # -x + t < 0  <=>  x > t : lower bound with boundary term t.
                lower_bounds.append(node.term.drop(var))
        elif isinstance(node, Dvd):
            if node.term.coefficient(var):
                moduli.append(node.modulus)
        elif isinstance(node, (And, Or)):
            for arg in node.args:
                scan(arg)

    scan(body)
    period = lcm_many(moduli)

    def minus_infinity(atom: Formula) -> Formula:
        if isinstance(atom, Lt):
            c = atom.term.coefficient(var)
            if c == 1:
                return TRUE   # x + t < 0 holds as x -> -infinity
            if c == -1:
                return FALSE  # -x + t < 0 fails as x -> -infinity
            return atom
        return atom

    phi_minus_inf = _map_atoms(body, minus_infinity)

    disjuncts: list[Formula] = []
    for j in range(1, period + 1):
        disjuncts.append(simplify(substitute(phi_minus_inf, var, j)))
    for bound in lower_bounds:
        for j in range(1, period + 1):
            disjuncts.append(simplify(substitute(body, var, bound + j)))
    return simplify(Or(disjuncts))


def eliminate_quantifiers(formula: Formula) -> Formula:
    """Equivalent quantifier-free formula in the extended language.

    Works innermost-first; ``∀x φ`` is handled as ``¬∃x ¬φ``.
    """
    if isinstance(formula, (TrueFormula, FalseFormula, Lt, Eq, Dvd)):
        return formula
    if isinstance(formula, And):
        return simplify(And(eliminate_quantifiers(a) for a in formula.args))
    if isinstance(formula, Or):
        return simplify(Or(eliminate_quantifiers(a) for a in formula.args))
    if isinstance(formula, Not):
        return simplify(Not(eliminate_quantifiers(formula.arg)))
    if isinstance(formula, Exists):
        return eliminate_exists(formula.var, eliminate_quantifiers(formula.body))
    if isinstance(formula, Forall):
        inner = eliminate_quantifiers(formula.body)
        return simplify(Not(eliminate_exists(formula.var, Not(inner))))
    raise TypeError(f"unknown formula node {formula!r}")


def decide(formula: Formula, env: "dict | None" = None) -> bool:
    """Decide a Presburger formula: eliminate quantifiers, then evaluate.

    Handles arbitrarily nested quantifiers (unlike the windowed brute-force
    evaluator in :mod:`repro.presburger.formulas`).
    """
    from repro.presburger.formulas import evaluate

    return evaluate(eliminate_quantifiers(formula), env or {})
