"""Least-squares fits for scaling experiments.

The paper's expected-time results are asymptotic (``(n-1)^2``,
``Theta(n^2 log n)``, ``O(n^{k+1})``).  The benchmark harness estimates the
polynomial exponent of measured interaction counts by fitting a line on
log-log axes, optionally after dividing out a ``log n`` factor.
"""

from __future__ import annotations

import math
from collections.abc import Sequence


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float]:
    """Ordinary least squares fit ``y = slope * x + intercept``.

    Returns ``(slope, intercept)``.  Requires at least two points.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    n = len(xs)
    if n < 2:
        raise ValueError("need at least two points to fit a line")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise ValueError("xs are all equal; slope undefined")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    return slope, intercept


def loglog_slope(
    ns: Sequence[float],
    values: Sequence[float],
    *,
    divide_log: bool = False,
) -> float:
    """Fitted exponent ``p`` for ``values ~ C * n^p`` (times ``log n`` if asked).

    With ``divide_log=True`` the values are first divided by ``log n`` so a
    ``Theta(n^2 log n)`` series fits an exponent close to 2.
    """
    if any(n <= 0 for n in ns):
        raise ValueError("sample sizes must be positive for log-log fitting")
    if divide_log and any(n <= 1 for n in ns):
        raise ValueError("sample sizes must exceed 1 to divide by log n")
    if any(v <= 0 for v in values):
        raise ValueError("values must be positive for log-log fitting")
    ys = list(values)
    if divide_log:
        ys = [v / math.log(n) for v, n in zip(ys, ns)]
    slope, _ = linear_fit([math.log(n) for n in ns], [math.log(y) for y in ys])
    return slope


def rsquared(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Coefficient of determination of the OLS line through (xs, ys)."""
    slope, intercept = linear_fit(xs, ys)
    mean_y = sum(ys) / len(ys)
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    ss_res = sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys))
    if ss_tot == 0:
        return 1.0
    return 1.0 - ss_res / ss_tot
