"""Hashable frozen multisets.

Population configurations over the complete interaction graph are naturally
multisets of states (Sect. 4.4 of the paper represents a configuration by
``|Q|`` counters).  :class:`FrozenMultiset` is the canonical, hashable
representation used by the exact-analysis machinery and the multiset
simulation engine.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import TypeVar

T = TypeVar("T", bound=Hashable)


class FrozenMultiset(Mapping):
    """An immutable multiset with value-based equality and hashing.

    Elements map to positive integer multiplicities.  Zero-count entries are
    dropped on construction, so two multisets are equal iff they contain the
    same elements with the same multiplicities.
    """

    __slots__ = ("_counts", "_hash", "_total")

    def __init__(self, items: Iterable[T] | Mapping[T, int] = ()):
        if isinstance(items, Mapping):
            counts = {k: int(v) for k, v in items.items() if v != 0}
        else:
            counts = dict(Counter(items))
        for value, count in counts.items():
            if count < 0:
                raise ValueError(f"negative multiplicity {count} for {value!r}")
        self._counts = counts
        self._total = sum(counts.values())
        self._hash = hash(frozenset(counts.items()))

    # -- Mapping interface -------------------------------------------------

    def __getitem__(self, item: T) -> int:
        return self._counts.get(item, 0)

    def __iter__(self) -> Iterator[T]:
        return iter(self._counts)

    def __len__(self) -> int:
        """Number of *distinct* elements."""
        return len(self._counts)

    def __contains__(self, item: object) -> bool:
        return item in self._counts

    # -- Multiset semantics -------------------------------------------------

    @property
    def total(self) -> int:
        """Total multiplicity (the population size for a configuration)."""
        return self._total

    def elements(self) -> Iterator[T]:
        """Iterate over elements with multiplicity (like Counter.elements)."""
        for value, count in self._counts.items():
            for _ in range(count):
                yield value

    def counts(self) -> dict[T, int]:
        """A fresh mutable dict of element -> multiplicity."""
        return dict(self._counts)

    def add(self, item: T, count: int = 1) -> "FrozenMultiset":
        """Return a new multiset with ``count`` more copies of ``item``."""
        counts = dict(self._counts)
        counts[item] = counts.get(item, 0) + count
        return FrozenMultiset(counts)

    def remove(self, item: T, count: int = 1) -> "FrozenMultiset":
        """Return a new multiset with ``count`` fewer copies of ``item``.

        Raises :class:`KeyError` if the multiset does not contain enough
        copies.
        """
        have = self._counts.get(item, 0)
        if have < count:
            raise KeyError(f"cannot remove {count} x {item!r}; only {have} present")
        counts = dict(self._counts)
        counts[item] = have - count
        return FrozenMultiset(counts)

    def replace_pair(self, old: tuple[T, T], new: tuple[T, T]) -> "FrozenMultiset":
        """Return the multiset after one interaction ``old -> new``.

        This is the configuration-level effect of one encounter: two agents
        in states ``old`` move to states ``new``.
        """
        counts = dict(self._counts)
        for item in old:
            have = counts.get(item, 0)
            if have <= 0:
                raise KeyError(f"state {item!r} not present for interaction")
            counts[item] = have - 1
        for item in new:
            counts[item] = counts.get(item, 0) + 1
        return FrozenMultiset(counts)

    def union_add(self, other: "FrozenMultiset") -> "FrozenMultiset":
        """Multiset sum (multiplicities add)."""
        counts = dict(self._counts)
        for value, count in other.items():
            counts[value] = counts.get(value, 0) + count
        return FrozenMultiset(counts)

    # -- Dunder plumbing ----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FrozenMultiset):
            return self._counts == other._counts
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{v!r}: {c}" for v, c in sorted(
            self._counts.items(), key=lambda kv: repr(kv[0])))
        return f"FrozenMultiset({{{inner}}})"


def multiset_from_counts(counts: Mapping[T, int]) -> FrozenMultiset:
    """Build a :class:`FrozenMultiset` from an element -> multiplicity map."""
    return FrozenMultiset(counts)
