"""Shared utilities: frozen multisets, RNG plumbing, math helpers, fitting."""

from repro.util.multiset import FrozenMultiset, multiset_from_counts
from repro.util.rng import resolve_rng
from repro.util.mathutil import lcm_many, harmonic_number, sign
from repro.util.fitting import loglog_slope, linear_fit

__all__ = [
    "FrozenMultiset",
    "multiset_from_counts",
    "resolve_rng",
    "lcm_many",
    "harmonic_number",
    "sign",
    "loglog_slope",
    "linear_fit",
]
