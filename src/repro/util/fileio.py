"""Crash-safe file writes.

Report artifacts — bench baselines, CSV exports, shrink reproductions —
are whole-file snapshots: a crash mid-write must never leave a half
file where a previous good one stood (the JSONL stores get the same
guarantee differently, via append-only writes plus torn-tail repair).
:func:`atomic_write_text` gives the standard write-temp-then-rename
discipline: the temp file lands in the destination directory (so the
``os.replace`` is within one filesystem and therefore atomic), is
fsynced before the rename, and is cleaned up on any failure.
"""

from __future__ import annotations

import os
import tempfile


def atomic_write_text(path, text: str, *, fsync: bool = True) -> None:
    """Write ``text`` to ``path`` atomically (write-temp-then-replace).

    Readers see either the previous contents or the complete new ones,
    never a torn intermediate — even across a crash or power loss (with
    ``fsync``, the default, the data is durable before the rename).
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
