"""Randomness plumbing.

Every stochastic component in the library accepts a ``seed`` argument that is
either ``None`` (fresh entropy), an ``int`` seed, or an existing
:class:`random.Random` instance.  Centralizing the resolution keeps
experiments reproducible end to end.
"""

from __future__ import annotations

import hashlib
import random

SeedLike = "int | random.Random | None"


def resolve_rng(seed: "int | random.Random | None" = None) -> random.Random:
    """Return a :class:`random.Random` for ``seed``.

    ``None`` creates a freshly-seeded generator; an ``int`` creates a
    deterministic generator; an existing generator is passed through
    unchanged (so callers can share one stream across components).
    """
    if seed is None:
        return random.Random()
    if isinstance(seed, random.Random):
        return seed
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise TypeError(f"seed must be None, int, or random.Random, not {type(seed).__name__}")
    return random.Random(seed)


def spawn_seeds(seed: "int | random.Random | None", count: int) -> list[int]:
    """Derive ``count`` independent integer seeds from ``seed``.

    Used by trial harnesses that run many independent simulations: each trial
    gets its own seed so trials are reproducible individually.
    """
    rng = resolve_rng(seed)
    return [rng.randrange(2**63) for _ in range(count)]


def derive_seed(*parts) -> int:
    """Deterministic 63-bit seed derived from a label path.

    Unlike :func:`spawn_seeds` (which walks one sequential RNG stream, so
    trial ``i``'s seed depends on how many seeds were drawn before it),
    this hashes the labels themselves: ``derive_seed(h, "n", 32, "trial", 7)``
    is a pure function of its arguments.  The experiment orchestration
    subsystem uses it to give every trial a seed that is independent of
    worker count and execution order.

    Parts are joined by their ``str()`` with an unambiguous separator and
    hashed with SHA-256; the top 63 bits of the digest are the seed.
    """
    if not parts:
        raise ValueError("derive_seed needs at least one label part")
    text = "\x1f".join(str(part) for part in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1
