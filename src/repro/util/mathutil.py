"""Small exact-arithmetic helpers used across the library."""

from __future__ import annotations

import math
from collections.abc import Iterable
from fractions import Fraction


def sign(value: int) -> int:
    """Return -1, 0, or +1 according to the sign of ``value``."""
    if value > 0:
        return 1
    if value < 0:
        return -1
    return 0


def lcm_many(values: Iterable[int]) -> int:
    """Least common multiple of the absolute values of ``values``.

    Zero entries are ignored; the lcm of an empty collection is 1.
    """
    result = 1
    for value in values:
        value = abs(value)
        if value:
            result = result * value // math.gcd(result, value)
    return result


def harmonic_number(n: int) -> float:
    """The n-th harmonic number H_n = 1 + 1/2 + ... + 1/n."""
    if n < 0:
        raise ValueError("harmonic_number requires n >= 0")
    return sum(1.0 / i for i in range(1, n + 1))


def floordiv_exact(a: int, b: int) -> tuple[int, int]:
    """Quotient and non-negative remainder with ``a == q*b + r, 0 <= r < |b|``."""
    if b == 0:
        raise ZeroDivisionError("division by zero")
    q, r = divmod(a, b)
    if r < 0:
        # Python's divmod already yields 0 <= r < b for b > 0; for b < 0
        # normalize to a non-negative remainder.
        q += 1
        r -= b
    return q, r


def binomial(n: int, k: int) -> int:
    """Binomial coefficient C(n, k), 0 for out-of-range k."""
    if k < 0 or k > n:
        return 0
    return math.comb(n, k)


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean of a non-empty iterable."""
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def exact_mean(values: Iterable[int]) -> Fraction:
    """Exact rational mean of a non-empty iterable of integers."""
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return Fraction(sum(values), len(values))
