"""repro — population protocols.

A from-scratch reproduction of Angluin, Aspnes, Diamadi, Fischer, Peralta,
"Computation in networks of passively mobile finite-state sensors"
(PODC 2004 / Distributed Computing 2006).

Subpackages
-----------
``repro.core``
    The formal model: protocols, populations, configurations, executions,
    encoding conventions, one-step semantics.
``repro.protocols``
    Concrete protocols: counting, threshold, remainder, majority,
    composition, leader election, Theorem 7 graph simulation, one-way.
``repro.presburger``
    Presburger arithmetic: formulas, Cooper quantifier elimination,
    semilinear sets, and the Theorem 5 formula-to-protocol compiler.
``repro.sim``
    Simulation engines (conjugating automata), schedulers, stopping rules,
    and trial harnesses.
``repro.analysis``
    Exact analysis: reachability, SCCs, stable-computation verification,
    Markov chains (Theorem 11).
``repro.exp``
    Experiment orchestration: declarative sweep specs, parallel workers
    with execution-independent seeding, resumable JSONL result stores,
    and scaling reports.
``repro.machines``
    Counter machines, Turing machines, Minsky's reduction, the Lemma 11 urn
    process, and the Theorem 9/10 population simulation of counter machines.
"""

from repro.core import (
    DictProtocol,
    Population,
    PopulationProtocol,
    complete_population,
)
from repro.sim import MultisetSimulation, Simulation, simulate_counts

__version__ = "1.0.0"

__all__ = [
    "DictProtocol",
    "PopulationProtocol",
    "Population",
    "complete_population",
    "MultisetSimulation",
    "Simulation",
    "simulate_counts",
    "__version__",
]
