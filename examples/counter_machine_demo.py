"""Theorem 9/10: a counter machine running on a population.

A leader agent drives a Minsky counter program whose counters live as unit
shares spread across the population; zero tests use the timer token with
parameter k.  The demo multiplies a number by 3 on a 30-agent population,
shows the probabilistic zero test's error/k trade-off, and runs the full
Turing-machine pipeline (unary parity -> Minsky counters -> population).

Run:  python examples/counter_machine_demo.py
"""

from repro.machines.counter import multiply_program, run_program
from repro.machines.minsky import tm_to_counter_program
from repro.machines.pp_counter import (
    HALTED,
    DesignatedLeaderProtocol,
    counter_totals,
    leader_states,
)
from repro.machines.turing import unary_parity_machine
from repro.sim.engine import simulate_counts
from repro.util.rng import spawn_seeds


def run_to_halt(protocol, counts, seed, max_steps=50_000_000):
    sim = simulate_counts(protocol, counts, seed=seed)
    halted = sim.run_until(
        lambda s: leader_states(s.states)[0][1] == HALTED,
        max_steps=max_steps, check_every=100)
    assert halted, "simulation did not halt in budget"
    return sim


def multiply_on_population() -> None:
    program = multiply_program(3)
    direct = run_program(program, [6, 0])
    protocol = DesignatedLeaderProtocol(program, zero_test_k=3)
    counts = protocol.make_input_counts([6, 0], 30)
    sim = run_to_halt(protocol, counts, seed=42)
    totals = counter_totals(sim.states)
    print("multiply-by-3 on a 30-agent population:")
    print(f"  input counters [6, 0] -> population result {totals} "
          f"(direct interpreter: {direct.counters})")
    print(f"  interactions used: {sim.interactions}\n")


def zero_test_tradeoff() -> None:
    from repro.machines.counter import Assembler

    asm = Assembler(1)
    asm.jzdec(0, 2)
    asm.halt(output=1)
    asm.halt(output=0)
    program = asm.assemble()

    print("zero-test error/k trade-off (counter holds 1, n=12, 200 trials):")
    print(f"{'k':>3} {'error rate':>11} {'mean interactions':>19}")
    for k in (1, 2, 3):
        protocol = DesignatedLeaderProtocol(program, zero_test_k=k)
        counts = protocol.make_input_counts([1], 12)
        wrong = 0
        total = 0
        for seed in spawn_seeds(99 + k, 200):
            sim = run_to_halt(protocol, counts, seed)
            total += sim.interactions
            if leader_states(sim.states)[0][6] != 1:
                wrong += 1
        print(f"{k:>3} {wrong / 200:>11.3f} {total / 200:>19.1f}")
    print("  (error falls like n^-k; time rises with k — Theorem 9)\n")


def turing_machine_pipeline() -> None:
    tm = unary_parity_machine()
    compilation = tm_to_counter_program(tm)
    protocol = DesignatedLeaderProtocol(compilation.program, capacity=6,
                                        zero_test_k=3)
    print("logspace TM on a population (unary parity, Theorem 10):")
    for m in (1, 2, 3, 4):
        initial = compilation.initial_counters(["1"] * m)
        counts = protocol.make_input_counts(initial, max(20, sum(initial) + 6))
        sim = run_to_halt(protocol, counts, seed=7 + m)
        verdict = leader_states(sim.states)[0][6]
        want = 1 if m % 2 else 0
        mark = "ok" if verdict == want else "WRONG (probabilistic!)"
        print(f"  |input| = {m}: verdict {verdict} (expected {want}) "
              f"after {sim.interactions} interactions [{mark}]")


def main() -> None:
    multiply_on_population()
    zero_test_tradeoff()
    turing_machine_pipeline()


if __name__ == "__main__":
    main()
