"""The full Theorem 5 pipeline on assorted Presburger predicates.

For each formula: parse -> Cooper quantifier elimination -> compile to a
population protocol (Lemma 5 atoms + Boolean closure) -> simulate under
random pairing -> compare with direct formula evaluation, and (for small
populations) certify stable computation exhaustively.

Run:  python examples/presburger_playground.py
"""

from repro.analysis.stability import all_inputs_of_size, verify_stable_computation
from repro.presburger.compiler import compile_predicate
from repro.presburger.parser import parse
from repro.presburger.qe import eliminate_quantifiers
from repro.sim.convergence import run_until_correct_stable
from repro.sim.engine import simulate_counts

FORMULAS = [
    "x < y",
    "x = y mod 3",
    "x = 1 mod 2 & x + 2 > y",
    "E k. x = 2*k & k >= 0",
    "E z. E q. (x + z = y) & (q + q + q = z)",   # the paper's xi_3
]


def show_pipeline(text: str) -> None:
    print(f"formula: {text}")
    formula = parse(text)
    quantifier_free = eliminate_quantifiers(formula)
    print(f"  quantifier-free form: {quantifier_free}")
    protocol = compile_predicate(text)
    atoms = getattr(protocol, "atoms", ())
    print(f"  compiled: {len(atoms)} Lemma 5 atom protocol(s), "
          f"{len(protocol.states())} reachable product states")

    # Simulate a couple of inputs and check against formula semantics.
    alphabet = sorted(protocol.input_alphabet)
    for counts in ({alphabet[0]: 3, alphabet[-1]: 4},
                   {alphabet[0]: 5, alphabet[-1]: 2}):
        expected = 1 if protocol.ground_truth(counts) else 0
        sim = simulate_counts(protocol, counts, seed=5)
        result = run_until_correct_stable(sim, expected,
                                          max_steps=50_000_000)
        status = "ok" if result.stopped else "TIMEOUT"
        print(f"  input {dict(counts)}: simulated verdict {expected} "
              f"after ~{result.converged_at} interactions [{status}]")

    # Exhaustive certification on populations of size 4.
    results = verify_stable_computation(
        protocol, lambda c: protocol.ground_truth(c),
        all_inputs_of_size(alphabet, 4))
    print(f"  model check (all inputs of size 4): "
          f"{'PASS' if all(results) else 'FAIL'}\n")


def main() -> None:
    for text in FORMULAS:
        show_pipeline(text)


if __name__ == "__main__":
    main()
