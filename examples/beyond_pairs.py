"""Sect. 8 model variations: bigger groups and changing populations.

The paper's discussion asks what happens when interaction rules involve
more than two agents, or may create and destroy agents.  This example runs
both variations next to their classical counterparts:

* 3-way count-to-k vs pairwise count-to-k (group interactions buy a
  constant-factor speedup);
* two-rule annihilation majority vs the Lemma 5 threshold protocol
  (population decrease makes majority almost trivial).

Run:  python examples/beyond_pairs.py
"""

from repro.core.dynamic import (
    DynamicSimulation,
    annihilation_majority,
    majority_by_annihilation,
)
from repro.core.multiway import GroupCountToK, MultiwaySimulation
from repro.protocols.counting import CountToK
from repro.protocols.majority import strict_majority_protocol
from repro.sim.convergence import run_until_correct_stable
from repro.sim.engine import simulate_counts
from repro.sim.stats import run_trials


def group_interactions() -> None:
    ones, zeros, k = 9, 9, 9

    def pairwise(seed):
        sim = simulate_counts(CountToK(k), {1: ones, 0: zeros}, seed=seed)
        sim.run_until(lambda s: s.unanimous_output() == 1,
                      max_steps=10_000_000, check_every=10)
        return sim.interactions

    def threeway(seed):
        sim = MultiwaySimulation(GroupCountToK(k, arity=3),
                                 [1] * ones + [0] * zeros, seed=seed)
        sim.run_until(lambda s: s.unanimous_output() == 1,
                      max_steps=10_000_000, check_every=10)
        return sim.interactions

    pair = run_trials(pairwise, trials=30, seed=1)
    group = run_trials(threeway, trials=30, seed=2)
    print("count-to-9 with 9 ones among 18 agents:")
    print(f"  pairwise meetings : mean {pair.mean:7.0f} interactions")
    print(f"  3-way meetings    : mean {group.mean:7.0f} interactions "
          f"({pair.mean / group.mean:.1f}x faster)\n")


def population_change() -> None:
    x_count, y_count = 36, 24
    verdict = majority_by_annihilation(x_count, y_count, seed=5)
    print(f"strict majority of {x_count} x vs {y_count} y "
          f"by annihilation: winner = {verdict!r}")

    def annihilation_time(seed):
        sim = DynamicSimulation(annihilation_majority(),
                                ["x"] * x_count + ["y"] * y_count, seed=seed)
        sim.run_until(lambda d: len(set(d.surviving_outputs())) <= 1,
                      max_steps=10_000_000, check_every=10)
        return sim.interactions

    def lemma5_time(seed):
        sim = simulate_counts(strict_majority_protocol(),
                              {1: x_count, 0: y_count}, seed=seed)
        result = run_until_correct_stable(sim, 1, max_steps=50_000_000)
        return max(result.converged_at, 1)

    fast = run_trials(annihilation_time, trials=25, seed=3)
    slow = run_trials(lemma5_time, trials=25, seed=4)
    print(f"  two-rule annihilation : mean {fast.mean:7.0f} interactions "
          "(survivors know)")
    print(f"  Lemma 5 threshold     : mean {slow.mean:7.0f} interactions "
          "(every agent knows)")
    print("  (different guarantees, but population change removes all "
          "the bookkeeping)")


def main() -> None:
    group_interactions()
    population_change()


if __name__ == "__main__":
    main()
