"""Exact analysis of population protocols (Theorems 6 and 11).

On the complete graph a configuration is just a multiset of states, so for
small populations we can materialize the whole reachable space and answer
questions exactly rather than by sampling:

* model-check stable computation (the Theorem 6 reachability certificate);
* compute the exact Markov chain under uniform random pairing, including
  the probability of each output and the expected interactions to
  convergence (Theorem 11's polynomial-time analysis);
* reproduce the (n-1)^2 leader-election expectation in closed loop.

Run:  python examples/exact_analysis.py
"""

from repro.analysis.markov import MarkovAnalysis, exact_output_distribution
from repro.analysis.stability import all_inputs_of_size, verify_stable_computation
from repro.protocols.leader import LeaderElection, expected_election_interactions
from repro.protocols.majority import majority_protocol
from repro.protocols.remainder import parity_protocol


def model_check() -> None:
    protocol = majority_protocol()
    results = verify_stable_computation(
        protocol, lambda c: c.get(1, 0) >= c.get(0, 0),
        all_inputs_of_size([0, 1], 5))
    explored = sum(r.configurations for r in results)
    print("Theorem 6 style model check — majority on all inputs of size 5:")
    print(f"  {len(results)} inputs, {explored} reachable configurations, "
          f"all correct: {all(results)}\n")


def exact_chain() -> None:
    print("Theorem 11 — exact chain analysis of parity on 3 ones, 4 zeros:")
    dist = exact_output_distribution(parity_protocol(), {1: 3, 0: 4})
    for output, probability in sorted(dist.output_probability.items(),
                                      key=lambda kv: repr(kv[0])):
        print(f"  P[stabilize to output {output!r}] = {probability:.6f}")
    print(f"  P[diverge] = {dist.divergence_probability:.2e}")
    print(f"  E[interactions to convergence] = "
          f"{dist.expected_interactions:.2f} "
          f"(over {dist.configurations} chain states)\n")


def leader_election() -> None:
    print("leader election: exact chain expectation vs the (n-1)^2 formula:")
    print(f"{'n':>4} {'chain':>12} {'formula':>9}")
    for n in (3, 5, 8, 12):
        analysis = MarkovAnalysis(LeaderElection(), {1: n})
        exact = analysis.expected_convergence_interactions()
        print(f"{n:>4} {exact:>12.4f} {expected_election_interactions(n):>9}")


def main() -> None:
    model_check()
    exact_chain()
    leader_election()


if __name__ == "__main__":
    main()
