"""Crash faults (Sect. 8): robust model, fragile algorithms.

The paper closes by noting that the *model* tolerates crashes naturally
(survivors keep interacting as before), but many of its *algorithms* do
not.  This example makes both halves concrete:

* the epidemic/OR protocol shrugs off crashes of uninfected agents;
* count-to-five silently loses the computation if the agent holding the
  consolidated tokens dies.

Run:  python examples/fault_tolerance.py
"""

from repro.protocols.counting import CountToK, Epidemic
from repro.sim.faults import CrashySimulation
from repro.util.rng import spawn_seeds


def epidemic_under_crashes(trials: int = 50) -> None:
    survived = 0
    for seed in spawn_seeds(2024, trials):
        sim = CrashySimulation(Epidemic(), [1] + [0] * 29, seed=seed)
        sim.run(10)
        # A third of the uninfected population dies.
        victims = [a for a in sim.alive if sim.states[a] == 0][:10]
        for victim in victims:
            sim.crash(victim)
        sim.run(30_000)
        if sim.unanimous_surviving_output() == 1:
            survived += 1
    print("epidemic/OR with 10 of 30 agents crashing mid-run:")
    print(f"  correct verdict on survivors in {survived}/{trials} trials\n")


def count_to_five_single_point_of_failure(trials: int = 50) -> None:
    broken = 0
    for seed in spawn_seeds(4048, trials):
        sim = CrashySimulation(CountToK(5), [1] * 4 + [0] * 12, seed=seed)
        # Wait until one agent has consolidated all four tokens, kill it.
        for _ in range(200_000):
            sim.step()
            holders = [a for a in sim.alive if sim.states[a] == 4]
            if holders:
                sim.crash(holders[0])
                break
        sim.run(30_000)
        if all(sim.states[a] == 0 for a in sim.alive):
            broken += 1
    print("count-to-five after the 4-token holder crashes:")
    print(f"  survivors left with zero tokens in {broken}/{trials} trials")
    print("  (the four 1-inputs are unrecoverable: a single point of "
          "failure,\n   exactly the fragility the paper's discussion "
          "warns about)\n")


def graceful_degradation() -> None:
    """Crashing *after* convergence never disturbs the verdict."""
    sim = CrashySimulation(CountToK(5), [1] * 6 + [0] * 10, seed=7)
    sim.run(100_000)
    before = sim.unanimous_surviving_output()
    sim.crash_random(8)
    sim.run(20_000)
    after = sim.unanimous_surviving_output()
    print("crashes after convergence (6 ones, answer 1):")
    print(f"  verdict before crashes: {before}; after crashing 8 of 16: "
          f"{after}")


def main() -> None:
    epidemic_under_crashes()
    count_to_five_single_point_of_failure()
    graceful_degradation()


if __name__ == "__main__":
    main()
