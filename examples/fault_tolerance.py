"""Crash faults (Sect. 8): robust model, fragile algorithms.

The paper closes by noting that the *model* tolerates crashes naturally
(survivors keep interacting as before), but many of its *algorithms* do
not.  This example drives the fault-injection layer
(:mod:`repro.sim.faults`) to make both halves concrete:

* the epidemic/OR protocol shrugs off crashes of uninfected agents;
* count-to-five silently loses the computation if an agent holding the
  consolidated tokens dies;
* ``RedundantCountToK`` repairs that single point of failure with capped
  token piles, at the price of input slack;
* omission faults merely dilate time: dropping half the encounters
  roughly doubles convergence, nothing more.

A fuller sweep is available as ``python -m repro robustness``.

Run:  python examples/fault_tolerance.py
"""

from repro.protocols.counting import CountToK, Epidemic, RedundantCountToK
from repro.sim.convergence import run_until_quiescent
from repro.sim.engine import simulate_counts
from repro.sim.faults import FaultPlan, OmissionRate, TargetedCrash
from repro.util.rng import spawn_seeds


def epidemic_under_crashes(trials: int = 50) -> None:
    survived = 0
    for seed in spawn_seeds(2024, trials):
        # A third of the uninfected population dies at step 10.
        plan = FaultPlan(TargetedCrash(lambda s: s == 0, 10, after_step=10),
                         seed=seed + 1)
        sim = simulate_counts(Epidemic(), {1: 1, 0: 29},
                              seed=seed, faults=plan)
        run_until_quiescent(sim, patience=2_000, max_steps=30_000)
        if sim.unanimous_surviving_output() == 1:
            survived += 1
    print("epidemic/OR with 10 of 30 agents crashing mid-run:")
    print(f"  correct verdict on survivors in {survived}/{trials} trials\n")


def count_to_five_single_point_of_failure(trials: int = 50) -> None:
    broken = 0
    for seed in spawn_seeds(4048, trials):
        # Kill the first agent seen holding 3+ consolidated tokens.
        plan = FaultPlan(TargetedCrash(lambda s: 3 <= s < 5), seed=seed + 1)
        sim = simulate_counts(CountToK(5), {1: 5, 0: 11},
                              seed=seed, faults=plan)
        run_until_quiescent(sim, patience=2_000, max_steps=30_000)
        if sim.unanimous_surviving_output() == 0:
            broken += 1
    print("count-to-five (5 ones, true answer 1) after a token holder "
          "crashes:")
    print(f"  verdict wrongly 0 in {broken}/{trials} trials")
    print("  (the consolidated tokens are unrecoverable: a single point "
          "of failure,\n   exactly the fragility the paper's discussion "
          "warns about)\n")


def redundant_counting_rescue(trials: int = 50) -> None:
    correct = 0
    for seed in spawn_seeds(6072, trials):
        # Same attack: kill the first agent holding a full (= cap) pile.
        plan = FaultPlan(TargetedCrash(lambda s: s == 3), seed=seed + 1)
        sim = simulate_counts(RedundantCountToK(5, cap=3), {1: 8, 0: 8},
                              seed=seed, faults=plan)
        run_until_quiescent(sim, patience=2_000, max_steps=30_000)
        if sim.unanimous_surviving_output() == 1:
            correct += 1
    print("redundant count-to-five (capped piles, 8 ones) under the same "
          "attack:")
    print(f"  correct verdict in {correct}/{trials} trials")
    print("  (a crash costs at most cap = 3 tokens; the slack keeps "
          "#1 >= 5 alive)\n")


def omission_time_dilation(trials: int = 20) -> None:
    totals = {0.0: 0, 0.5: 0}
    for rate in totals:
        for seed in spawn_seeds(8096, trials):
            plan = FaultPlan(OmissionRate(rate), seed=seed + 1)
            sim = simulate_counts(Epidemic(), {1: 1, 0: 29},
                                  seed=seed, faults=plan)
            result = run_until_quiescent(sim, patience=3_000,
                                         max_steps=100_000)
            totals[rate] += result.converged_at
    print("omission faults only dilate time (epidemic, n = 30):")
    for rate, total in sorted(totals.items()):
        print(f"  drop rate {rate:.0%}: mean convergence "
              f"~{total / trials:.0f} interactions")
    print()


def graceful_degradation() -> None:
    """Crashing *after* convergence never disturbs the verdict."""
    sim = simulate_counts(CountToK(5), {1: 6, 0: 10}, seed=7)
    sim.run(100_000)
    before = sim.unanimous_surviving_output()
    sim.crash_random(8)
    sim.run(20_000)
    after = sim.unanimous_surviving_output()
    print("crashes after convergence (6 ones, answer 1):")
    print(f"  verdict before crashes: {before}; after crashing 8 of 16: "
          f"{after}")


def main() -> None:
    epidemic_under_crashes()
    count_to_five_single_point_of_failure()
    redundant_counting_rescue()
    omission_time_dilation()
    graceful_degradation()


if __name__ == "__main__":
    main()
