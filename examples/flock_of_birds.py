"""The 5% flock-of-birds question (Sect. 1 and Sect. 4.2).

"Is at least 5% of the flock running a fever?" is not expressible with a
fixed counting threshold — it is the Presburger predicate
``20 x1 >= x0 + x1``.  This example answers it two ways:

1. the hand-built Lemma 5 threshold protocol (``x0 - 19 x1 < 1``), and
2. the Theorem 5 compiler applied to the formula text,

then sweeps flock sizes right at the 5% boundary, and reports convergence
times against the paper's Theorem 8 bound O(n^2 log n).  The sweep runs
on the experiment orchestration subsystem (repro.exp): it is one
declarative spec, executed across two worker processes, with per-trial
seeds derived from the spec's content hash.

Run:  python examples/flock_of_birds.py
"""

import math

from repro.exp import ExperimentSpec, InputGrid, StopRule, aggregate, run_experiment
from repro.presburger.compiler import compile_predicate
from repro.protocols.majority import flock_of_birds_protocol
from repro.sim.convergence import run_until_correct_stable
from repro.sim.engine import simulate_counts


def verdict(protocol, healthy_symbol, feverish_symbol, healthy, feverish,
            seed):
    expected = 1 if 20 * feverish >= feverish + healthy else 0
    sim = simulate_counts(
        protocol, {healthy_symbol: healthy, feverish_symbol: feverish},
        seed=seed)
    result = run_until_correct_stable(sim, expected, max_steps=100_000_000)
    assert result.stopped
    return expected, result.converged_at


def main() -> None:
    hand_built = flock_of_birds_protocol()
    compiled = compile_predicate("20*e >= e + h")

    print("5% fever predicate at the boundary (hand-built vs compiled):")
    print(f"{'flock':>7} {'feverish':>9} {'pct':>7} "
          f"{'hand':>5} {'compiled':>9}")
    for total, feverish in [(40, 2), (41, 2), (60, 3), (61, 3),
                            (100, 5), (101, 5)]:
        healthy = total - feverish
        hand, _ = verdict(hand_built, 0, 1, healthy, feverish, seed=7)
        comp, _ = verdict(compiled, "h", "e", healthy, feverish, seed=7)
        pct = 100 * feverish / total
        print(f"{total:>7} {feverish:>9} {pct:>6.2f}% {hand:>5} {comp:>9}")
        assert hand == comp

    print("\nconvergence vs flock size (exactly 5% feverish):")
    spec = ExperimentSpec(
        protocol="flock-of-birds",
        ns=(20, 40, 80, 160),
        trials=3,
        inputs=InputGrid(kind="fraction", fraction=0.05),
        stop=StopRule(rule="correct-stable", max_steps=100_000_000),
        seed=11,
    )
    result = run_experiment(spec, workers=2)
    assert all(r["stopped"] and r["correct"] for r in result.records)
    print(f"(experiment {spec.short_hash}: {spec.trials} trials/point "
          "across 2 workers)")
    print(f"{'n':>6} {'mean interactions':>18} {'n^2 log n':>12} {'ratio':>8}")
    for point in aggregate(result.records, metric="converged_at"):
        bound = point.n * point.n * math.log(point.n)
        print(f"{point.n:>6} {point.summary.mean:>18.0f} {bound:>12.0f} "
              f"{point.summary.mean / bound:>8.3f}")
    print("\n(ratio roughly constant -> Theta(n^2 log n), Theorem 8)")


if __name__ == "__main__":
    main()
