"""Quickstart: the paper's count-to-five protocol, end to end.

Builds the Sect. 1 protocol ("do at least five birds have elevated
temperatures?"), replays the paper's worked execution from Sect. 3.2,
runs the conjugating-automata simulation, and certifies stable computation
exhaustively with the model checker.

Run:  python examples/quickstart.py
"""

from repro.analysis.stability import all_inputs_of_size, verify_stable_computation
from repro.core.configuration import initial_configuration
from repro.core.execution import Execution
from repro.protocols.counting import count_to_five
from repro.sim.convergence import run_until_quiescent
from repro.sim.engine import simulate_counts


def replay_paper_trace() -> None:
    """The exact computation displayed in Sect. 3.2 of the paper."""
    protocol = count_to_five()
    execution = Execution(protocol, initial_configuration(
        protocol, [0, 1, 0, 1, 1, 1]))
    print("Sect. 3.2 worked example (input 0,1,0,1,1,1):")
    print(f"  start: {execution.current.states}")
    for encounter in [(1, 3), (5, 4), (1, 5), (2, 1)]:  # paper's 1-indexed
        execution.step(*encounter)
        paper_pair = (encounter[0] + 1, encounter[1] + 1)
        print(f"  after {paper_pair}: {execution.current.states}")
    print(f"  outputs: {execution.outputs()}  (four 1s -> answer 0)\n")


def simulate_flock(elevated: int, total: int, seed: int) -> None:
    protocol = count_to_five()
    sim = simulate_counts(protocol, {1: elevated, 0: total - elevated},
                          seed=seed)
    result = run_until_quiescent(sim, patience=10_000, max_steps=2_000_000)
    verdict = "at least five" if result.output == 1 else "fewer than five"
    print(f"flock of {total}, {elevated} elevated -> every sensor answers "
          f"{result.output} ({verdict}); converged after "
          f"~{result.converged_at} interactions")


def certify() -> None:
    protocol = count_to_five()
    results = verify_stable_computation(
        protocol, lambda counts: counts.get(1, 0) >= 5,
        all_inputs_of_size([0, 1], 7))
    checked = len(results)
    configs = sum(r.configurations for r in results)
    print(f"\nmodel checker: all {checked} inputs of size 7 verified "
          f"({configs} reachable configurations explored); "
          f"stable computation holds: {all(results)}")


def main() -> None:
    replay_paper_trace()
    simulate_flock(elevated=6, total=20, seed=1)
    simulate_flock(elevated=4, total=20, seed=1)
    certify()


if __name__ == "__main__":
    main()
