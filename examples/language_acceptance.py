"""Language acceptance (Sect. 3.5, Corollaries 1 and 4).

Population protocols accept exactly symmetric languages (Corollary 1), and
any symmetric language with a semilinear Parikh image is acceptable
(Corollary 4).  This example builds an acceptor for the classic symmetric
language

    L = { w in {a, b}* : #a(w) = #b(w) }

three ways — from a formula, from a semilinear set, and checks a
non-symmetric language really has no hope.

Run:  python examples/language_acceptance.py
"""

import itertools

from repro.core.languages import LanguageAcceptor, is_symmetric_language
from repro.presburger.compiler import compile_predicate
from repro.presburger.qe import eliminate_quantifiers
from repro.presburger.semilinear import LinearSet, SemilinearSet


def words(alphabet, max_length):
    for length in range(2, max_length + 1):
        yield from itertools.product(alphabet, repeat=length)


def formula_route() -> None:
    print("route 1: the formula 'a = b' compiled directly")
    acceptor = LanguageAcceptor(compile_predicate("a = b"))
    sample = [("a", "b"), ("a", "a"), ("b", "a", "a", "b"),
              ("a", "a", "b"), ("b", "b", "a", "a")]
    for word in sample:
        verdict = acceptor.accepts_exact(word)
        truth = word.count("a") == word.count("b")
        marker = "ok" if verdict == truth else "WRONG"
        print(f"  {''.join(word):<6} -> {verdict!s:<5} [{marker}]")
    print()


def semilinear_route() -> None:
    print("route 2: Corollary 4 — Parikh image {(k, k)} as a linear set")
    parikh_image = SemilinearSet([LinearSet((0, 0), [(1, 1)])])
    formula = eliminate_quantifiers(parikh_image.to_formula(["a", "b"]))
    print(f"  quantifier-free membership formula: {formula}")
    acceptor = LanguageAcceptor(compile_predicate(formula))
    correct = sum(
        1 for word in words("ab", 4)
        if acceptor.accepts_exact(word) == (word.count("a") == word.count("b")))
    total = sum(1 for _ in words("ab", 4))
    print(f"  exhaustive check on words up to length 4: {correct}/{total}\n")


def asymmetry_route() -> None:
    print("route 3: Corollary 1 — non-symmetric languages are out of reach")
    starts_with_a = lambda w: len(w) > 0 and w[0] == "a"  # noqa: E731
    symmetric = is_symmetric_language(starts_with_a, words("ab", 4))
    print(f"  'starts with a' symmetric? {symmetric} "
          "(so no population protocol accepts it)")


def main() -> None:
    formula_route()
    semilinear_route()
    asymmetry_route()


if __name__ == "__main__":
    main()
