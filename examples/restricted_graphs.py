"""Theorem 7: computing on restricted interaction graphs.

The baton simulator A' (Fig. 1) lets any weakly-connected interaction graph
run a protocol designed for the complete graph.  This example runs
count-to-five and majority on a line, a ring, a star, and a sparse random
graph, and reports the slowdown relative to the complete graph.

Run:  python examples/restricted_graphs.py
"""

from repro.core.population import (
    complete_population,
    line_population,
    random_connected_population,
    ring_population,
    star_population,
)
from repro.protocols.counting import count_to_five
from repro.protocols.graph_simulation import GraphSimulationProtocol
from repro.protocols.majority import majority_protocol
from repro.sim.convergence import run_until_correct_stable
from repro.sim.engine import Simulation

GRAPHS = {
    "complete (native)": complete_population,
    "line": line_population,
    "ring": ring_population,
    "star": star_population,
    "sparse random": lambda n: random_connected_population(n, 0.2, seed=3),
}


def run_case(name, inner, inputs, expected, seed=13):
    n = len(inputs)
    print(f"{name}: {sum(1 for v in inputs if v == 1)} ones out of {n} "
          f"(expected verdict {expected})")
    baseline = None
    for graph_name, factory in GRAPHS.items():
        population = factory(n)
        if population.is_complete:
            protocol = inner
        else:
            protocol = GraphSimulationProtocol(inner)
        sim = Simulation(protocol, inputs, population=population, seed=seed)
        result = run_until_correct_stable(sim, expected,
                                          max_steps=200_000_000,
                                          settle_factor=1.5)
        assert result.stopped
        converged = max(result.converged_at, 1)
        if baseline is None:
            baseline = converged
        print(f"  {graph_name:<18} converged after {converged:>9} "
              f"interactions  (x{converged / baseline:.1f})")
    print()


def main() -> None:
    run_case("count-to-five", count_to_five(),
             [1, 1, 0, 1, 0, 1, 1, 0], expected=1)
    run_case("count-to-five", count_to_five(),
             [1, 1, 0, 1, 0, 0, 1, 0], expected=0)
    run_case("majority", majority_protocol(),
             [1, 1, 1, 1, 1, 0, 0, 0], expected=1)
    print("Theorem 7: the complete graph is the weakest weakly-connected\n"
          "interaction graph — everything it computes, any connected graph\n"
          "computes too (at a polynomial price in interactions).")


if __name__ == "__main__":
    main()
