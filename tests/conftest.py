"""Shared test configuration.

Keeps hypothesis deadlines off (simulation-heavy property tests have
variable runtimes) and provides a couple of widely used fixtures.
"""

import pytest
from hypothesis import settings

settings.register_profile("repro", deadline=None, max_examples=60)
settings.load_profile("repro")


@pytest.fixture
def seed() -> int:
    """A fixed seed for deterministic simulation tests."""
    return 0xC0FFEE
