"""Smoke tests: the example scripts keep running end to end.

Only the fast examples run here (the full set runs in CI / by hand); each
is executed in-process via runpy with its __main__ guard honoured.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "exact_analysis.py",
    "fault_tolerance.py",
    "language_acceptance.py",
    "presburger_playground.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys):
    path = EXAMPLES / script
    assert path.exists(), f"example {script} missing"
    saved_argv = sys.argv
    sys.argv = [str(path)]
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = saved_argv
    out = capsys.readouterr().out
    assert out.strip(), f"example {script} produced no output"
    assert "WRONG" not in out
    assert "FAIL]" not in out


def test_all_examples_exist_and_have_docstrings():
    scripts = sorted(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 6
    for script in scripts:
        text = script.read_text()
        assert text.lstrip().startswith('"""'), f"{script.name} lacks a docstring"
        assert "def main()" in text, f"{script.name} lacks a main()"
