"""Tests for language acceptance (Sect. 3.5, Corollaries 1 and 4)."""

import itertools

import pytest

from repro.core.languages import (
    LanguageAcceptor,
    accepts_language,
    is_symmetric_language,
)
from repro.presburger.compiler import compile_predicate
from repro.protocols.majority import majority_protocol
from repro.protocols.remainder import parity_protocol


def words_over(alphabet, max_length):
    for length in range(2, max_length + 1):
        yield from itertools.product(alphabet, repeat=length)


class TestSymmetryCheck:
    def test_symmetric_language_passes(self):
        # "more 1s than 0s" is symmetric.
        assert is_symmetric_language(
            lambda w: list(w).count(1) > list(w).count(0),
            words_over([0, 1], 4))

    def test_asymmetric_language_caught(self):
        # "starts with 1" is not symmetric.
        assert not is_symmetric_language(
            lambda w: len(w) > 0 and w[0] == 1,
            words_over([0, 1], 3))


class TestParityLanguage:
    def test_exact_acceptance(self):
        acceptor = LanguageAcceptor(parity_protocol())
        for word in words_over([0, 1], 4):
            assert acceptor.accepts_exact(word) == \
                (list(word).count(1) % 2 == 1)

    def test_simulated_acceptance(self, seed):
        acceptor = LanguageAcceptor(parity_protocol())
        assert acceptor.accepts([1, 1, 1, 0, 0], seed=seed)
        assert not acceptor.accepts([1, 1, 0, 0], seed=seed)

    def test_short_words_rejected(self, seed):
        with pytest.raises(ValueError):
            LanguageAcceptor(parity_protocol()).accepts([1], seed=seed)


class TestMajorityLanguage:
    def test_accepts_language_helper(self):
        assert accepts_language(
            majority_protocol(),
            words_over([0, 1], 4),
            lambda w: w.count(1) >= w.count(0))

    def test_wrong_language_detected(self):
        assert not accepts_language(
            majority_protocol(),
            words_over([0, 1], 4),
            lambda w: w.count(1) > 2 * w.count(0))


class TestCompiledLanguage:
    """Corollary 4 flavour: a compiled Presburger predicate as an
    acceptor for the symmetric language it defines."""

    def test_equal_counts_language(self):
        protocol = compile_predicate("x = y")
        acceptor = LanguageAcceptor(protocol)
        assert acceptor.accepts_exact(["x", "y"])
        assert acceptor.accepts_exact(["y", "x", "x", "y"])
        assert not acceptor.accepts_exact(["x", "x", "y"])

    def test_parikh_of(self):
        protocol = compile_predicate("x = y")
        acceptor = LanguageAcceptor(protocol)
        assert acceptor.parikh_of(["x", "y", "x"]) == {"x": 2, "y": 1}

    def test_unknown_letter_rejected(self):
        protocol = compile_predicate("x = y")
        with pytest.raises(ValueError):
            LanguageAcceptor(protocol).parikh_of(["z", "x"])
