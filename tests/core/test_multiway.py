"""Tests for group interactions (Sect. 8)."""

import pytest

from repro.core.multiway import (
    GroupCountToK,
    MultiwaySimulation,
    PairwiseAsMultiway,
)
from repro.protocols.counting import CountToK
from repro.sim.engine import simulate_counts
from repro.sim.stats import run_trials


class TestPairwiseEmbedding:
    def test_delta_matches_inner(self):
        inner = CountToK(3)
        wrapped = PairwiseAsMultiway(inner)
        assert wrapped.arity == 2
        assert wrapped.delta_group((1, 2)) == inner.delta(1, 2)
        assert wrapped.output(3) == inner.output(3)
        assert wrapped.initial_state(1) == 1

    def test_wrong_arity_rejected(self):
        wrapped = PairwiseAsMultiway(CountToK(3))
        with pytest.raises(ValueError):
            wrapped.delta_group((1, 1, 1))

    def test_simulation_equivalent_semantics(self, seed):
        inner = CountToK(3)
        wrapped = PairwiseAsMultiway(inner)
        sim = MultiwaySimulation(wrapped, [1, 1, 1, 0, 0], seed=seed)
        sim.run_until(lambda s: s.unanimous_output() == 1,
                      max_steps=100_000, check_every=10)
        assert sim.unanimous_output() == 1


class TestGroupCountToK:
    def test_merge_rule(self):
        p = GroupCountToK(5, arity=3)
        assert p.delta_group((1, 1, 1)) == (3, 0, 0)
        assert p.delta_group((2, 2, 1)) == (5, 5, 5)   # reaches k
        assert p.delta_group((0, 0, 0)) == (0, 0, 0)
        assert p.delta_group((2, 0, 0)) == (2, 0, 0)   # already consolidated

    def test_alert_spreads_through_groups(self):
        p = GroupCountToK(5, arity=3)
        assert p.delta_group((5, 0, 1)) == (5, 5, 5)

    def test_moves_tokens_to_first(self):
        p = GroupCountToK(5, arity=3)
        assert p.delta_group((0, 2, 1)) == (3, 0, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            GroupCountToK(0)
        with pytest.raises(ValueError):
            GroupCountToK(3, arity=1)
        with pytest.raises(ValueError):
            GroupCountToK(3, arity=3).delta_group((1, 1))

    @pytest.mark.parametrize("ones,expected", [(4, 0), (5, 1), (8, 1)])
    def test_correctness(self, ones, expected, seed):
        p = GroupCountToK(5, arity=3)
        inputs = [1] * ones + [0] * (12 - ones)
        sim = MultiwaySimulation(p, inputs, seed=seed)
        sim.run(60_000)
        assert sim.unanimous_output() == expected

    def test_sum_bounded_by_ones_before_alert(self, seed):
        p = GroupCountToK(6, arity=3)
        sim = MultiwaySimulation(p, [1] * 4 + [0] * 6, seed=seed)
        for _ in range(5000):
            sim.step()
            assert 6 not in sim.states   # four ones can never alert
            assert sum(sim.states) == 4  # token conservation


class TestArityAdvantage:
    def test_three_way_converges_in_fewer_interactions(self, seed):
        """Each productive 3-way meeting merges more counters, so the
        3-way protocol needs fewer interactions than the pairwise one."""
        ones, zeros, k = 9, 9, 9

        def pairwise_trial(s):
            sim = simulate_counts(CountToK(k), {1: ones, 0: zeros}, seed=s)
            sim.run_until(lambda x: x.unanimous_output() == 1,
                          max_steps=10_000_000, check_every=10)
            return sim.interactions

        def threeway_trial(s):
            sim = MultiwaySimulation(GroupCountToK(k, arity=3),
                                     [1] * ones + [0] * zeros, seed=s)
            sim.run_until(lambda x: x.unanimous_output() == 1,
                          max_steps=10_000_000, check_every=10)
            return sim.interactions

        pairwise = run_trials(pairwise_trial, trials=40, seed=seed)
        threeway = run_trials(threeway_trial, trials=40, seed=seed + 1)
        assert threeway.mean < pairwise.mean


class TestMultiwaySimulation:
    def test_needs_enough_agents(self):
        with pytest.raises(ValueError):
            MultiwaySimulation(GroupCountToK(3, arity=4), [1, 1, 1])

    def test_deterministic_by_seed(self):
        p = GroupCountToK(4, arity=3)
        a = MultiwaySimulation(p, [1] * 5 + [0] * 3, seed=5)
        b = MultiwaySimulation(p, [1] * 5 + [0] * 3, seed=5)
        a.run(500)
        b.run(500)
        assert a.states == b.states

    def test_outputs_view(self):
        p = GroupCountToK(2, arity=3)
        sim = MultiwaySimulation(p, [1, 1, 1, 0], seed=0)
        assert sim.outputs() == (0, 0, 0, 0)
