"""Tests for protocol pretty-printing."""

import pytest

from repro.core.pretty import describe, transition_matrix_text
from repro.protocols.counting import CountToK, count_to_five
from repro.protocols.threshold import ThresholdProtocol


class TestDescribe:
    def test_contains_all_sections(self):
        text = describe(CountToK(2))
        assert "states (3)" in text
        assert "I(1) = 1" in text
        assert "O(2) = 1" in text
        assert "(1, 1) -> (2, 2)" in text

    def test_transition_count_shown(self):
        text = describe(count_to_five())
        assert "non-no-op" in text

    def test_size_guard(self):
        big = ThresholdProtocol({"a": 5, "b": -5}, c=4)
        with pytest.raises(ValueError):
            describe(big, max_transitions=10)

    def test_deterministic(self):
        assert describe(CountToK(3)) == describe(CountToK(3))


class TestTransitionMatrix:
    def test_grid_renders(self):
        text = transition_matrix_text(CountToK(2))
        # Row for state 1 meeting state 1 must show the alert pair.
        assert "2,2" in text.replace(" ", "")

    def test_size_guard(self):
        with pytest.raises(ValueError):
            transition_matrix_text(CountToK(20))  # 21 states > 12
