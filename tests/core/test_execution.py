"""Tests for executions — including the paper's Sect. 3.2 worked example."""

import pytest

from repro.core.configuration import initial_configuration
from repro.core.execution import Encounter, Execution, replay
from repro.core.population import Population, complete_population
from repro.protocols.counting import count_to_five


class TestEncounter:
    def test_distinct_agents_required(self):
        with pytest.raises(ValueError):
            Encounter(2, 2)


class TestExecution:
    def test_step_records(self):
        p = count_to_five()
        e = Execution(p, initial_configuration(p, [1, 1, 0]))
        e.step(0, 1)
        assert e.steps == 1
        assert e.current.states == (2, 0, 0)
        assert e.encounters == [Encounter(0, 1)]

    def test_extend(self):
        p = count_to_five()
        e = Execution(p, initial_configuration(p, [1, 1, 1, 0]))
        e.extend([(0, 1), (0, 2)])
        assert e.current.states == (3, 0, 0, 0)

    def test_outputs_and_history(self):
        p = count_to_five()
        e = Execution(p, initial_configuration(p, [1, 1, 1, 1, 1, 0]))
        e.extend([(0, 1), (0, 2), (0, 3), (0, 4)])
        # Agent 0 accumulated 4 tokens, then met agent 4 (1 token): the sum
        # reached 5, so exactly that pair entered the alert state.
        assert e.outputs() == (1, 0, 0, 0, 1, 0)
        history = e.output_history()
        assert history[0] == (0, 0, 0, 0, 0, 0)
        assert history[-1] == (1, 0, 0, 0, 1, 0)

    def test_last_output_change(self):
        p = count_to_five()
        e = Execution(p, initial_configuration(p, [1, 1, 0]))
        e.extend([(0, 1), (0, 2), (1, 2)])  # only state moves, outputs fixed
        assert e.last_output_change() == 0

    def test_last_output_change_detects_alert(self):
        p = count_to_five()
        e = Execution(p, initial_configuration(p, [1, 1, 1, 1, 1, 0]))
        e.extend([(1, 2), (0, 1), (0, 2), (0, 3), (0, 4)])
        assert e.last_output_change() == 5


class TestPaperWorkedExample:
    """The exact computation displayed in Sect. 3.2 of the paper.

    Input assignment (0, 1, 0, 1, 1, 1); encounters (2,4), (6,5), (2,6),
    (3,2) in the paper's 1-indexed notation.
    """

    def test_trace(self):
        p = count_to_five()
        e = Execution(p, initial_configuration(p, [0, 1, 0, 1, 1, 1]))
        assert e.current.states == (0, 1, 0, 1, 1, 1)

        e.step(1, 3)  # paper's (2, 4)
        assert e.current.states == (0, 2, 0, 0, 1, 1)

        e.step(5, 4)  # paper's (6, 5)
        assert e.current.states == (0, 2, 0, 0, 0, 2)

        e.step(1, 5)  # paper's (2, 6)
        assert e.current.states == (0, 4, 0, 0, 0, 0)

        e.step(2, 1)  # paper's (3, 2)
        assert e.current.states == (0, 0, 4, 0, 0, 0)

        # The paper notes all reachable outputs from here equal all-zeros.
        assert e.outputs() == (0, 0, 0, 0, 0, 0)

    def test_reachable_outputs_stay_zero(self):
        """From the final trace configuration, outputs are stable at 0."""
        from repro.analysis.stability import is_output_stable
        from repro.util.multiset import FrozenMultiset

        p = count_to_five()
        assert is_output_stable(p, FrozenMultiset({0: 5, 4: 1}))


class TestReplay:
    def test_replay_reproduces(self):
        p = count_to_five()
        initial = initial_configuration(p, [0, 1, 0, 1, 1, 1])
        encounters = [(1, 3), (5, 4), (1, 5), (2, 1)]
        e = replay(p, initial, encounters)
        assert e.current.states == (0, 0, 4, 0, 0, 0)

    def test_replay_checks_population_edges(self):
        p = count_to_five()
        initial = initial_configuration(p, [1, 1, 1])
        pop = Population(3, [(0, 1), (1, 0)])
        with pytest.raises(ValueError):
            replay(p, initial, [(0, 2)], population=pop)

    def test_replay_accepts_complete_population(self):
        p = count_to_five()
        initial = initial_configuration(p, [1, 1, 1])
        replay(p, initial, [(0, 2), (2, 1)], population=complete_population(3))
