"""Tests for input/output encoding conventions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.conventions import (
    AllAgentsPredicateOutput,
    IntegerInput,
    IntegerOutput,
    ScalarIntegerOutput,
    StringInput,
    SymbolCountInput,
    SymbolCountOutput,
    ZeroNonZeroPredicateOutput,
    parikh,
)


class TestParikh:
    def test_counts(self):
        assert parikh("abcab", "abc") == (2, 2, 1)

    def test_unknown_letter(self):
        with pytest.raises(ValueError):
            parikh("abz", "ab")

    def test_duplicate_alphabet(self):
        with pytest.raises(ValueError):
            parikh("a", "aa")

    @given(st.lists(st.sampled_from("ab")))
    def test_total_preserved(self, word):
        counts = parikh(word, "ab")
        assert sum(counts) == len(word)


class TestSymbolCountInput:
    def test_roundtrip(self):
        conv = SymbolCountInput("ab")
        assignment = conv.encode([2, 3])
        assert conv.decode(assignment) == (2, 3)

    def test_decode_any_order(self):
        conv = SymbolCountInput("ab")
        assert conv.decode(["b", "a", "b"]) == (1, 2)

    def test_encode_rejects_negative(self):
        with pytest.raises(ValueError):
            SymbolCountInput("ab").encode([1, -1])

    def test_encode_wrong_length(self):
        with pytest.raises(ValueError):
            SymbolCountInput("ab").encode([1])

    def test_counts_mapping(self):
        conv = SymbolCountInput("ab")
        assert conv.counts_mapping([1, 2]) == {"a": 1, "b": 2}

    def test_duplicate_alphabet_rejected(self):
        with pytest.raises(ValueError):
            SymbolCountInput("aa")


class TestIntegerInput:
    def test_standard_alphabet_size(self):
        conv = IntegerInput.standard(2)
        assert len(conv.alphabet) == 5  # zero + 4 unit vectors

    def test_decode_sums(self):
        conv = IntegerInput.standard(2)
        assignment = [(1, 0), (1, 0), (0, -1), (0, 0)]
        assert conv.decode(assignment) == (2, -1)

    @given(st.integers(-4, 4), st.integers(-4, 4))
    def test_encode_decode_roundtrip(self, a, b):
        conv = IntegerInput.standard(2)
        n = abs(a) + abs(b) + 3
        assignment = conv.encode((a, b), n)
        assert len(assignment) == n
        assert conv.decode(assignment) == (a, b)

    def test_encode_too_large(self):
        conv = IntegerInput.standard(1)
        with pytest.raises(ValueError):
            conv.encode((5,), 3)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            IntegerInput({"a": (1, 0), "b": (1,)})

    def test_unknown_symbol(self):
        conv = IntegerInput.standard(1)
        with pytest.raises(ValueError):
            conv.decode([("weird",)])


class TestStringInput:
    def test_identity(self):
        conv = StringInput("ab")
        assert conv.decode(["a", "b", "a"]) == ("a", "b", "a")

    def test_unknown_letter(self):
        with pytest.raises(ValueError):
            StringInput("ab").decode(["c"])


class TestPredicateOutputs:
    def test_all_agents_true(self):
        assert AllAgentsPredicateOutput().decode([1, 1, 1]) is True

    def test_all_agents_false(self):
        assert AllAgentsPredicateOutput().decode([0, 0]) is False

    def test_all_agents_bottom(self):
        assert AllAgentsPredicateOutput().decode([0, 1]) is None

    def test_zero_nonzero(self):
        conv = ZeroNonZeroPredicateOutput()
        assert conv.decode([0, 0, 1]) is True
        assert conv.decode([0, 0, 0]) is False


class TestValueOutputs:
    def test_symbol_count_output(self):
        assert SymbolCountOutput("xy").decode(["x", "y", "x"]) == (2, 1)

    def test_integer_output(self):
        conv = IntegerOutput(2)
        assert conv.decode([(1, 2), (0, -1)]) == (1, 1)

    def test_integer_output_dimension_check(self):
        with pytest.raises(ValueError):
            IntegerOutput(2).decode([(1,)])

    def test_integer_output_rejects_zero_dim(self):
        with pytest.raises(ValueError):
            IntegerOutput(0)

    def test_scalar_output(self):
        assert ScalarIntegerOutput().decode([1, 0, 1, 1]) == 3
