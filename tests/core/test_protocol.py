"""Tests for the protocol base classes."""

import pytest

from repro.core.protocol import (
    DictProtocol,
    PopulationProtocol,
    ProtocolError,
    as_dict_protocol,
)
from repro.protocols.counting import CountToK, count_to_five


class TestDictProtocol:
    def make(self) -> DictProtocol:
        return DictProtocol(
            input_map={0: "a", 1: "b"},
            output_map={"a": 0, "b": 1, "c": 1},
            transitions={("a", "b"): ("c", "a")},
            name="toy",
        )

    def test_alphabets(self):
        p = self.make()
        assert p.input_alphabet == {0, 1}
        assert p.output_alphabet == {0, 1}

    def test_delta_defaults_to_noop(self):
        p = self.make()
        assert p.delta("b", "a") == ("b", "a")
        assert p.delta("a", "b") == ("c", "a")

    def test_unknown_symbol_raises(self):
        with pytest.raises(ProtocolError):
            self.make().initial_state(7)

    def test_unknown_state_output_raises(self):
        with pytest.raises(ProtocolError):
            self.make().output("zz")

    def test_transition_with_unmapped_state_rejected(self):
        with pytest.raises(ProtocolError):
            DictProtocol(
                input_map={0: "a"},
                output_map={"a": 0},
                transitions={("a", "a"): ("a", "ghost")},
            )

    def test_initial_state_without_output_rejected(self):
        with pytest.raises(ProtocolError):
            DictProtocol(
                input_map={0: "ghost"},
                output_map={"a": 0},
                transitions={},
            )

    def test_empty_input_map_rejected(self):
        with pytest.raises(ProtocolError):
            DictProtocol(input_map={}, output_map={}, transitions={})


class TestStateDiscovery:
    def test_count_to_five_states(self):
        p = count_to_five()
        assert p.states() == frozenset(range(6))

    def test_count_to_two(self):
        p = CountToK(2)
        assert p.states() == frozenset({0, 1, 2})

    def test_states_includes_unreached_initials(self):
        p = DictProtocol(
            input_map={0: "a"},
            output_map={"a": 0, "b": 1},
            transitions={("a", "a"): ("b", "b")},
        )
        assert p.states() == frozenset({"a", "b"})

    def test_max_states_guard(self):
        class Runaway(PopulationProtocol):
            input_alphabet = frozenset({0})
            output_alphabet = frozenset({0})

            def initial_state(self, symbol):
                return 0

            def output(self, state):
                return 0

            def delta(self, p, q):
                return p + 1, q  # unbounded state space

        with pytest.raises(ProtocolError):
            Runaway().states(max_states=100)


class TestDerivedHelpers:
    def test_is_noop(self):
        p = count_to_five()
        assert p.is_noop(0, 0)
        assert not p.is_noop(1, 1)

    def test_transition_table_omits_noops(self):
        p = CountToK(2)
        table = p.transition_table()
        assert ((0, 0)) not in table
        assert table[(1, 1)] == (2, 2)

    def test_validate_passes_for_library_protocol(self):
        count_to_five().validate()

    def test_validate_catches_bad_output(self):
        class Bad(CountToK):
            def output(self, state):
                return "surprise"

        with pytest.raises(ProtocolError):
            Bad(3).validate()

    def test_as_dict_protocol_equivalent(self):
        p = CountToK(3)
        d = as_dict_protocol(p)
        states = p.states()
        for symbol in p.input_alphabet:
            assert d.initial_state(symbol) == p.initial_state(symbol)
        for s in states:
            assert d.output(s) == p.output(s)
            for t in states:
                assert d.delta(s, t) == p.delta(s, t)
