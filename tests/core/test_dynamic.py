"""Tests for population change (Sect. 8 birth/death interactions)."""

import pytest

from repro.core.dynamic import (
    AnnihilationMajority,
    DynamicProtocol,
    DynamicSimulation,
    annihilation_majority,
    majority_by_annihilation,
)


class TestAnnihilationRules:
    def test_opposites_annihilate(self):
        p = annihilation_majority()
        assert p.delta_dynamic("x", "y") == ()
        assert p.delta_dynamic("y", "x") == ()

    def test_same_colour_noop(self):
        p = annihilation_majority()
        assert p.delta_dynamic("x", "x") == ("x", "x")

    def test_bad_symbol(self):
        with pytest.raises(ValueError):
            annihilation_majority().initial_state("z")


class TestDynamicSimulation:
    def test_population_shrinks_by_pairs(self, seed):
        sim = DynamicSimulation(annihilation_majority(),
                                ["x"] * 5 + ["y"] * 3, seed=seed)
        sizes = {sim.n}
        for _ in range(5000):
            sim.step()
            sizes.add(sim.n)
        assert min(sizes) >= 2
        assert all(size % 2 == 0 for size in sizes if size != 8)

    def test_difference_invariant(self, seed):
        """#x - #y is conserved by every rule (the correctness invariant)."""
        sim = DynamicSimulation(annihilation_majority(),
                                ["x"] * 7 + ["y"] * 4, seed=seed)
        for _ in range(5000):
            sim.step()
            outputs = sim.surviving_outputs()
            assert outputs.count("x") - outputs.count("y") == 3

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            DynamicSimulation(annihilation_majority(), ["x"])

    def test_step_noop_below_two_agents(self, seed):
        sim = DynamicSimulation(annihilation_majority(), ["x", "y"],
                                seed=seed)
        sim.step()  # annihilates the only pair
        assert sim.n == 0
        assert sim.step() is False

    def test_offspring_bound_enforced(self, seed):
        class Exploder(AnnihilationMajority):
            max_offspring = 2

            def delta_dynamic(self, p, q):
                return (p, q, p)  # 3 > max_offspring

        sim = DynamicSimulation(Exploder(), ["x", "x"], seed=seed)
        with pytest.raises(RuntimeError):
            sim.step()

    def test_spawning_protocol(self, seed):
        """Birth works too: a splitter doubles until a cap."""

        class Splitter(DynamicProtocol):
            input_alphabet = frozenset({"a"})
            output_alphabet = frozenset({"a"})

            def initial_state(self, symbol):
                return "a"

            def output(self, state):
                return "a"

            def delta_dynamic(self, p, q):
                return ("a", "a", "a")  # pair becomes a triple

        sim = DynamicSimulation(Splitter(), ["a", "a"], seed=seed,
                                max_population=64)
        with pytest.raises(RuntimeError):
            sim.run(200)  # exceeds the cap, loudly
        assert sim.n > 2


class TestMajorityByAnnihilation:
    @pytest.mark.parametrize("x,y,expected", [
        (7, 3, "x"), (3, 7, "y"), (5, 5, None), (2, 1, "x"),
    ])
    def test_verdicts(self, x, y, expected, seed):
        assert majority_by_annihilation(x, y, seed=seed) == expected

    def test_always_correct_over_seeds(self, seed):
        from repro.util.rng import spawn_seeds

        for s in spawn_seeds(seed, 25):
            assert majority_by_annihilation(6, 4, seed=s) == "x"

    def test_too_small(self):
        with pytest.raises(ValueError):
            majority_by_annihilation(1, 0)
