"""Tests for protocol serialization."""

import pytest

from repro.core.protocol import DictProtocol
from repro.core.serialization import (
    SerializationError,
    protocol_from_dict,
    protocol_from_json,
    protocol_to_dict,
    protocol_to_json,
)
from repro.protocols.counting import CountToK, count_to_five
from repro.protocols.threshold import ThresholdProtocol


def assert_equivalent(a, b) -> None:
    states = a.states() if not isinstance(a, DictProtocol) else a.declared_states()
    for symbol in a.input_alphabet:
        assert b.initial_state(symbol) == a.initial_state(symbol)
    for p in states:
        assert b.output(p) == a.output(p)
        for q in states:
            assert b.delta(p, q) == a.delta(p, q)


class TestRoundTrip:
    def test_count_to_five(self):
        original = count_to_five()
        restored = protocol_from_json(protocol_to_json(original, "c5"))
        assert restored.name == "c5"
        assert restored.input_alphabet == original.input_alphabet
        assert_equivalent(original, restored)

    def test_threshold_with_tuple_states(self):
        original = ThresholdProtocol({"a": 1, "b": -1}, c=1)
        restored = protocol_from_json(protocol_to_json(original))
        assert_equivalent(original, restored)

    def test_compiled_protocol(self):
        from repro.presburger.compiler import compile_predicate

        original = compile_predicate("x = 1 mod 2 & x < y")
        restored = protocol_from_json(protocol_to_json(original))
        # Spot-check behaviour via the model checker.
        from repro.analysis.stability import (
            all_inputs_of_size,
            verify_stable_computation,
        )

        results = verify_stable_computation(
            restored, lambda c: original.ground_truth(c),
            all_inputs_of_size(["x", "y"], 4))
        assert all(results)

    def test_dict_protocol_round_trip(self):
        original = DictProtocol(
            input_map={0: ("a", 1), 1: ("b", None)},
            output_map={("a", 1): 0, ("b", None): 1, ("c", True): 1},
            transitions={(("a", 1), ("b", None)): (("c", True), ("a", 1))},
            name="weird-states",
        )
        restored = protocol_from_json(protocol_to_json(original))
        assert restored.initial_state(1) == ("b", None)
        assert restored.delta(("a", 1), ("b", None)) == (("c", True), ("a", 1))

    def test_json_is_deterministic(self):
        a = protocol_to_json(CountToK(3))
        b = protocol_to_json(CountToK(3))
        assert a == b


class TestErrors:
    def test_unsupported_state_type(self):
        bad = DictProtocol(
            input_map={0: frozenset({1})},
            output_map={frozenset({1}): 0},
            transitions={},
        )
        with pytest.raises(SerializationError):
            protocol_to_dict(bad)

    def test_bad_format_tag(self):
        with pytest.raises(SerializationError):
            protocol_from_dict({"format": "something-else"})

    def test_invalid_json(self):
        with pytest.raises(SerializationError):
            protocol_from_json("{not json")

    def test_malformed_value(self):
        doc = protocol_to_dict(CountToK(2))
        doc["input_map"][0][0] = {"t": "mystery", "v": 1}
        with pytest.raises(SerializationError):
            protocol_from_dict(doc)

    def test_bool_int_distinction_preserved(self):
        # True and 1 are distinct states after a round trip.
        original = DictProtocol(
            input_map={0: True, 1: 1},
            output_map={True: 0, 1: 1},
            transitions={},
        )
        restored = protocol_from_json(protocol_to_json(original))
        assert restored.initial_state(0) is True
        assert restored.initial_state(1) == 1
        assert restored.initial_state(1) is not True


class TestWrappedProtocolRoundTrip:
    def test_graph_simulation_protocol(self):
        """The Theorem 7 wrapper (tuple-of-str states) serializes and the
        restored copy behaves identically on every reachable pair."""
        from repro.protocols.counting import CountToK
        from repro.protocols.graph_simulation import GraphSimulationProtocol

        original = GraphSimulationProtocol(CountToK(2))
        restored = protocol_from_json(protocol_to_json(original))
        states = original.states()
        for p in states:
            assert restored.output(p) == original.output(p)
            for q in states:
                assert restored.delta(p, q) == original.delta(p, q)
