"""Tests for configurations."""

import pytest

from repro.core.configuration import (
    AgentConfiguration,
    initial_configuration,
    initial_multiset,
    multiset_outputs,
    unanimous_output,
)
from repro.protocols.counting import count_to_five
from repro.util.multiset import FrozenMultiset


class TestAgentConfiguration:
    def test_indexing(self):
        c = AgentConfiguration([1, 2, 3])
        assert c[0] == 1
        assert c.n == 3

    def test_too_small(self):
        with pytest.raises(ValueError):
            AgentConfiguration([1])

    def test_apply_encounter(self):
        p = count_to_five()
        c = AgentConfiguration([1, 1, 0])
        after = c.apply_encounter(p, 0, 1)
        assert after.states == (2, 0, 0)

    def test_apply_encounter_noop_returns_self(self):
        p = count_to_five()
        c = AgentConfiguration([0, 0, 1])
        assert c.apply_encounter(p, 0, 1) is c

    def test_self_encounter_rejected(self):
        p = count_to_five()
        with pytest.raises(ValueError):
            AgentConfiguration([1, 1]).apply_encounter(p, 1, 1)

    def test_outputs(self):
        p = count_to_five()
        c = AgentConfiguration([5, 0, 4])
        assert c.outputs(p) == (1, 0, 0)

    def test_to_multiset(self):
        c = AgentConfiguration([1, 1, 0])
        assert c.to_multiset() == FrozenMultiset([0, 1, 1])

    def test_permute(self):
        c = AgentConfiguration(["a", "b", "c"])
        # agent 0 -> position 2, agent 1 -> position 0, agent 2 -> position 1
        p = c.permute([2, 0, 1])
        assert p.states == ("b", "c", "a")

    def test_permute_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            AgentConfiguration([1, 2]).permute([0, 0])

    def test_equality_and_hash(self):
        a = AgentConfiguration([1, 2])
        b = AgentConfiguration([1, 2])
        assert a == b
        assert hash(a) == hash(b)
        assert a != AgentConfiguration([2, 1])


class TestInitialConfigurations:
    def test_initial_configuration(self):
        p = count_to_five()
        c = initial_configuration(p, [0, 1, 1])
        assert c.states == (0, 1, 1)

    def test_initial_configuration_bad_symbol(self):
        with pytest.raises(ValueError):
            initial_configuration(count_to_five(), [0, 7])

    def test_initial_multiset(self):
        p = count_to_five()
        ms = initial_multiset(p, {0: 2, 1: 3})
        assert ms == FrozenMultiset({0: 2, 1: 3})

    def test_initial_multiset_skips_zero_counts(self):
        p = count_to_five()
        ms = initial_multiset(p, {0: 3, 1: 0})
        assert ms == FrozenMultiset({0: 3})

    def test_initial_multiset_rejects_tiny_population(self):
        with pytest.raises(ValueError):
            initial_multiset(count_to_five(), {1: 1})

    def test_initial_multiset_rejects_negative(self):
        with pytest.raises(ValueError):
            initial_multiset(count_to_five(), {0: 3, 1: -1})


class TestOutputViews:
    def test_multiset_outputs(self):
        p = count_to_five()
        ms = FrozenMultiset({5: 2, 0: 1})
        assert multiset_outputs(p, ms) == FrozenMultiset({1: 2, 0: 1})

    def test_unanimous_output(self):
        p = count_to_five()
        assert unanimous_output(p, FrozenMultiset({5: 3})) == 1
        assert unanimous_output(p, FrozenMultiset({0: 1, 3: 2})) == 0
        assert unanimous_output(p, FrozenMultiset({5: 1, 0: 1})) is None
