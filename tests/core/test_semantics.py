"""Tests for the one-step multiset semantics."""

from repro.core.semantics import (
    apply_transition,
    enabled_state_pairs,
    enabled_transitions,
    is_silent,
    pair_count,
    successors,
)
from repro.protocols.counting import CountToK, count_to_five
from repro.util.multiset import FrozenMultiset


class TestEnabledPairs:
    def test_distinct_states(self):
        ms = FrozenMultiset({0: 1, 1: 1})
        pairs = set(enabled_state_pairs(ms))
        assert pairs == {(0, 1), (1, 0)}

    def test_same_state_needs_two_agents(self):
        assert set(enabled_state_pairs(FrozenMultiset({1: 1, 0: 1}))) == \
            {(1, 0), (0, 1)}
        assert (1, 1) in set(enabled_state_pairs(FrozenMultiset({1: 2})))


class TestTransitions:
    def test_enabled_transitions_skip_noops(self):
        p = count_to_five()
        ms = FrozenMultiset({0: 3})
        assert enabled_transitions(p, ms) == []

    def test_enabled_transitions_found(self):
        p = count_to_five()
        ms = FrozenMultiset({1: 2})
        transitions = enabled_transitions(p, ms)
        assert (((1, 1), (2, 0))) in transitions

    def test_apply_transition(self):
        ms = FrozenMultiset({1: 2})
        after = apply_transition(ms, ((1, 1), (2, 0)))
        assert after == FrozenMultiset({2: 1, 0: 1})


class TestSuccessors:
    def test_successor_set(self):
        p = CountToK(3)
        ms = FrozenMultiset({1: 2, 0: 1})
        succ = successors(p, ms)
        assert FrozenMultiset({2: 1, 0: 2}) in succ
        # delta(0, 1) = (1, 0) swaps states between agents: a state-changing
        # step at the agent level that maps the multiset to itself, so the
        # configuration IS its own successor here.
        assert ms in succ
        assert len(succ) == 2

    def test_noop_only_config_has_no_successors(self):
        p = CountToK(3)
        assert successors(p, FrozenMultiset({0: 4})) == set()

    def test_population_size_preserved(self):
        p = count_to_five()
        ms = FrozenMultiset({1: 4, 0: 2})
        for succ in successors(p, ms):
            assert succ.total == ms.total


class TestSilence:
    def test_initial_not_silent(self):
        p = count_to_five()
        assert not is_silent(p, FrozenMultiset({1: 2}))

    def test_all_zero_silent(self):
        p = count_to_five()
        assert is_silent(p, FrozenMultiset({0: 5}))

    def test_alert_config_silent(self):
        p = count_to_five()
        assert is_silent(p, FrozenMultiset({5: 4}))

    def test_tail_swap_prevents_silence(self):
        # (q0, q4) -> (q4, q0) changes states, so not silent even though
        # the outputs are stable.
        p = count_to_five()
        assert not is_silent(p, FrozenMultiset({0: 3, 4: 1}))


class TestPairCount:
    def test_distinct(self):
        ms = FrozenMultiset({0: 3, 1: 2})
        assert pair_count(ms, 0, 1) == 6
        assert pair_count(ms, 1, 0) == 6

    def test_same(self):
        ms = FrozenMultiset({0: 3})
        assert pair_count(ms, 0, 0) == 6  # 3 * 2 ordered pairs

    def test_total_weight(self):
        ms = FrozenMultiset({0: 3, 1: 2, 2: 1})
        n = ms.total
        total = sum(pair_count(ms, p, q) for p in ms for q in ms)
        assert total == n * (n - 1)
