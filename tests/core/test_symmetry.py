"""Theorem 1 / Corollary 1: invariance under agent renaming.

The paper proves that any predicate stably computed on the standard
population is invariant under permuting the input assignment.  These are
executable versions of that argument: permuting agents and conjugating the
encounter sequence produces the permuted execution (the simulation lemma
inside the proof of Theorem 1), and verdicts depend only on symbol counts.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.configuration import initial_configuration
from repro.core.execution import replay
from repro.protocols.counting import count_to_five
from repro.protocols.majority import majority_protocol
from repro.sim.convergence import run_until_quiescent
from repro.sim.engine import Simulation


@st.composite
def permutations(draw, n: int):
    items = list(range(n))
    return draw(st.permutations(items))


class TestExecutionConjugation:
    """R_A(x, y) implies R_A(x ∘ pi, y ∘ pi): permuted inputs with
    permuted encounters yield the permuted configuration."""

    @settings(max_examples=40)
    @given(st.lists(st.sampled_from([0, 1]), min_size=4, max_size=8),
           st.data())
    def test_conjugated_replay(self, inputs, data):
        protocol = count_to_five()
        n = len(inputs)
        pi = data.draw(permutations(n))
        encounters = data.draw(st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1))
            .filter(lambda e: e[0] != e[1]),
            min_size=0, max_size=12))

        plain = replay(protocol, initial_configuration(protocol, inputs),
                       encounters)

        permuted_inputs = [None] * n
        for agent, symbol in enumerate(inputs):
            permuted_inputs[pi[agent]] = symbol
        permuted_encounters = [(pi[i], pi[j]) for i, j in encounters]
        permuted = replay(
            protocol, initial_configuration(protocol, permuted_inputs),
            permuted_encounters)

        assert permuted.current == plain.current.permute(pi)


class TestVerdictInvariance:
    """Corollary 1: acceptance depends only on the Parikh image."""

    @settings(max_examples=10)
    @given(st.integers(0, 8), st.integers(0, 10_000))
    def test_majority_any_arrangement(self, ones, seed):
        protocol = majority_protocol()
        n = 10
        expected = 1 if ones >= n - ones else 0
        base = [1] * ones + [0] * (n - ones)
        arrangements = [base, list(reversed(base)),
                        base[::2] + base[1::2]]
        for inputs in arrangements:
            sim = Simulation(protocol, inputs, seed=seed)
            result = run_until_quiescent(sim, patience=10_000,
                                         max_steps=2_000_000)
            assert result.output == expected
