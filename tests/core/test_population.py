"""Tests for populations and interaction graphs."""

import pytest

from repro.core.population import (
    Population,
    PopulationError,
    complete_population,
    grid_population,
    line_population,
    random_connected_population,
    ring_population,
    star_population,
)


class TestPopulation:
    def test_complete_by_default(self):
        p = Population(4)
        assert p.is_complete
        assert len(p.edges) == 12

    def test_explicit_complete_detected(self):
        edges = [(u, v) for u in range(3) for v in range(3) if u != v]
        assert Population(3, edges).is_complete

    def test_self_loop_rejected(self):
        with pytest.raises(PopulationError):
            Population(3, [(0, 0), (0, 1), (1, 0), (1, 2), (2, 1)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(PopulationError):
            Population(3, [(0, 5)])

    def test_too_small_rejected(self):
        with pytest.raises(PopulationError):
            Population(1)

    def test_no_edges_rejected(self):
        with pytest.raises(PopulationError):
            Population(3, [])

    def test_out_neighbors(self):
        p = Population(3, [(0, 1), (0, 2), (1, 0)])
        assert p.out_neighbors(0) == [1, 2]
        assert p.out_neighbors(2) == []


class TestConnectivity:
    def test_complete_connected(self):
        assert complete_population(5).is_weakly_connected()

    def test_line_connected(self):
        assert line_population(6).is_weakly_connected()

    def test_disconnected_detected(self):
        p = Population(4, [(0, 1), (1, 0), (2, 3), (3, 2)])
        assert not p.is_weakly_connected()

    def test_one_way_edges_count_as_weak(self):
        p = Population(3, [(0, 1), (1, 2)])
        assert p.is_weakly_connected()


class TestConstructors:
    def test_line_edge_count(self):
        assert len(line_population(5).edges) == 8  # 4 undirected pairs

    def test_ring_edge_count(self):
        assert len(ring_population(5).edges) == 10

    def test_ring_too_small(self):
        with pytest.raises(PopulationError):
            ring_population(2)

    def test_star_hub(self):
        p = star_population(5)
        assert set(p.out_neighbors(0)) == {1, 2, 3, 4}
        assert p.out_neighbors(3) == [0]

    def test_grid_shape(self):
        p = grid_population(2, 3)
        assert p.n == 6
        # Interior adjacency: agent 1 (row 0, col 1) touches 0, 2, 4.
        assert set(p.out_neighbors(1)) == {0, 2, 4}

    def test_grid_too_small(self):
        with pytest.raises(PopulationError):
            grid_population(1, 1)

    def test_random_connected_is_connected(self):
        for seed in range(5):
            p = random_connected_population(12, 0.05, seed=seed)
            assert p.is_weakly_connected()

    def test_random_connected_deterministic_by_seed(self):
        a = random_connected_population(10, 0.2, seed=3)
        b = random_connected_population(10, 0.2, seed=3)
        assert a.edges == b.edges

    def test_random_connected_bad_probability(self):
        with pytest.raises(PopulationError):
            random_connected_population(5, 1.5)

    def test_all_constructors_bidirectional(self):
        for p in (line_population(5), ring_population(5), star_population(5),
                  grid_population(2, 3), random_connected_population(8, 0.3, seed=1)):
            for (u, v) in p.edges:
                assert (v, u) in p.edges
