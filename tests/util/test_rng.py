"""Tests for RNG plumbing."""

import random

import pytest

from repro.util.rng import derive_seed, resolve_rng, spawn_seeds


class TestResolveRng:
    def test_none_gives_fresh_generator(self):
        assert isinstance(resolve_rng(None), random.Random)

    def test_int_is_deterministic(self):
        a = resolve_rng(42)
        b = resolve_rng(42)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_generator_passthrough(self):
        rng = random.Random(1)
        assert resolve_rng(rng) is rng

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            resolve_rng(True)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            resolve_rng(1.5)


class TestSpawnSeeds:
    def test_deterministic(self):
        assert spawn_seeds(7, 5) == spawn_seeds(7, 5)

    def test_count(self):
        assert len(spawn_seeds(1, 10)) == 10

    def test_distinct(self):
        seeds = spawn_seeds(1, 100)
        assert len(set(seeds)) == 100


class TestDeriveSeed:
    def test_pure_function_of_labels(self):
        assert derive_seed("abc", 8, 0) == derive_seed("abc", 8, 0)

    def test_order_and_boundaries_matter(self):
        # "ab","c" vs "a","bc" must not collide: parts are delimited.
        assert derive_seed("ab", "c") != derive_seed("a", "bc")
        assert derive_seed(1, 2) != derive_seed(2, 1)

    def test_distinct_across_label_space(self):
        seeds = {derive_seed("spec", n, t)
                 for n in range(10) for t in range(10)}
        assert len(seeds) == 100

    def test_fits_in_a_nonnegative_int64(self):
        for part in ("x", 0, 3.5):
            assert 0 <= derive_seed(part) < 2 ** 63

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            derive_seed()
