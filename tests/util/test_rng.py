"""Tests for RNG plumbing."""

import random

import pytest

from repro.util.rng import resolve_rng, spawn_seeds


class TestResolveRng:
    def test_none_gives_fresh_generator(self):
        assert isinstance(resolve_rng(None), random.Random)

    def test_int_is_deterministic(self):
        a = resolve_rng(42)
        b = resolve_rng(42)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_generator_passthrough(self):
        rng = random.Random(1)
        assert resolve_rng(rng) is rng

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            resolve_rng(True)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            resolve_rng(1.5)


class TestSpawnSeeds:
    def test_deterministic(self):
        assert spawn_seeds(7, 5) == spawn_seeds(7, 5)

    def test_count(self):
        assert len(spawn_seeds(1, 10)) == 10

    def test_distinct(self):
        seeds = spawn_seeds(1, 100)
        assert len(set(seeds)) == 100
