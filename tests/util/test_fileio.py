"""Tests for crash-safe whole-file writes."""

import os

import pytest

from repro.util.fileio import atomic_write_text


class TestAtomicWriteText:
    def test_writes_and_overwrites(self, tmp_path):
        path = tmp_path / "artifact.json"
        atomic_write_text(path, "first\n")
        assert path.read_text() == "first\n"
        atomic_write_text(path, "second\n")
        assert path.read_text() == "second\n"

    def test_no_temp_files_left_behind(self, tmp_path):
        path = tmp_path / "artifact.json"
        atomic_write_text(path, "data\n")
        assert os.listdir(tmp_path) == ["artifact.json"]

    def test_failed_write_preserves_previous_contents(self, tmp_path):
        path = tmp_path / "artifact.json"
        atomic_write_text(path, "good\n")

        class Exploding(str):
            def __str__(self):
                raise RuntimeError("mid-write crash")

        # A failure before the rename must leave the old file intact
        # and clean up its temp file.
        with pytest.raises(TypeError):
            atomic_write_text(path, object())  # not writable as text
        assert path.read_text() == "good\n"
        assert os.listdir(tmp_path) == ["artifact.json"]

    def test_relative_path_in_cwd(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        atomic_write_text("bare-name.txt", "x\n")
        assert (tmp_path / "bare-name.txt").read_text() == "x\n"

    def test_fsync_disabled_still_atomic(self, tmp_path):
        path = tmp_path / "artifact.json"
        atomic_write_text(path, "fast\n", fsync=False)
        assert path.read_text() == "fast\n"
