"""Tests for scaling fits."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.fitting import linear_fit, loglog_slope, rsquared


class TestLinearFit:
    def test_exact_line(self):
        xs = [0.0, 1.0, 2.0, 3.0]
        ys = [1.0, 3.0, 5.0, 7.0]
        slope, intercept = linear_fit(xs, ys)
        assert math.isclose(slope, 2.0)
        assert math.isclose(intercept, 1.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            linear_fit([1, 2], [1])

    def test_one_point_rejected(self):
        with pytest.raises(ValueError):
            linear_fit([1], [1])

    def test_degenerate_xs_rejected(self):
        with pytest.raises(ValueError):
            linear_fit([2, 2, 2], [1, 2, 3])

    @given(st.floats(-5, 5), st.floats(-5, 5))
    def test_recovers_random_line(self, slope, intercept):
        xs = [0.0, 1.0, 2.5, 4.0]
        ys = [slope * x + intercept for x in xs]
        got_slope, got_intercept = linear_fit(xs, ys)
        assert math.isclose(got_slope, slope, abs_tol=1e-9)
        assert math.isclose(got_intercept, intercept, abs_tol=1e-9)


class TestLogLogSlope:
    def test_quadratic(self):
        ns = [10, 20, 40, 80]
        values = [3.0 * n**2 for n in ns]
        assert math.isclose(loglog_slope(ns, values), 2.0, abs_tol=1e-9)

    def test_n2_log_n_with_division(self):
        ns = [16, 32, 64, 128, 256]
        values = [5.0 * n**2 * math.log(n) for n in ns]
        assert math.isclose(
            loglog_slope(ns, values, divide_log=True), 2.0, abs_tol=1e-9)

    def test_rejects_nonpositive_values(self):
        with pytest.raises(ValueError):
            loglog_slope([2, 4], [1.0, 0.0])

    def test_rejects_nonpositive_ns(self):
        with pytest.raises(ValueError):
            loglog_slope([0, 4], [1.0, 2.0])

    def test_rejects_n_one_only_with_log_division(self):
        loglog_slope([1, 4], [1.0, 2.0])  # fine without division
        with pytest.raises(ValueError):
            loglog_slope([1, 4], [1.0, 2.0], divide_log=True)


class TestRSquared:
    def test_perfect_fit(self):
        xs = [1.0, 2.0, 3.0]
        ys = [2.0, 4.0, 6.0]
        assert math.isclose(rsquared(xs, ys), 1.0)

    def test_constant_ys(self):
        assert rsquared([1.0, 2.0, 3.0], [5.0, 5.0, 5.0]) == 1.0

    def test_noisy_below_one(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        ys = [1.0, 4.0, 2.0, 5.0]
        assert rsquared(xs, ys) < 1.0
