"""Tests for math helpers."""

import math
from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.mathutil import (
    binomial,
    exact_mean,
    floordiv_exact,
    harmonic_number,
    lcm_many,
    mean,
    sign,
)


class TestSign:
    def test_values(self):
        assert sign(5) == 1
        assert sign(-3) == -1
        assert sign(0) == 0


class TestLcm:
    def test_basic(self):
        assert lcm_many([4, 6]) == 12
        assert lcm_many([2, 3, 5]) == 30

    def test_absolute_values(self):
        assert lcm_many([-4, 6]) == 12

    def test_zeros_ignored(self):
        assert lcm_many([0, 5]) == 5

    def test_empty_is_one(self):
        assert lcm_many([]) == 1

    @given(st.lists(st.integers(-20, 20), max_size=6))
    def test_divides_all(self, values):
        result = lcm_many(values)
        for v in values:
            if v:
                assert result % abs(v) == 0


class TestHarmonic:
    def test_small_values(self):
        assert harmonic_number(0) == 0
        assert harmonic_number(1) == 1.0
        assert math.isclose(harmonic_number(4), 1 + 0.5 + 1 / 3 + 0.25)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            harmonic_number(-1)

    def test_log_growth(self):
        # H_n ~ ln n + gamma
        n = 10_000
        assert abs(harmonic_number(n) - (math.log(n) + 0.5772156649)) < 1e-4


class TestFloordivExact:
    @given(st.integers(-100, 100), st.integers(-10, 10).filter(bool))
    def test_invariant(self, a, b):
        q, r = floordiv_exact(a, b)
        assert a == q * b + r
        assert 0 <= r < abs(b)

    def test_zero_divisor(self):
        with pytest.raises(ZeroDivisionError):
            floordiv_exact(5, 0)


class TestBinomial:
    def test_values(self):
        assert binomial(5, 2) == 10
        assert binomial(5, 0) == 1

    def test_out_of_range(self):
        assert binomial(5, 6) == 0
        assert binomial(5, -1) == 0


class TestMeans:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_exact_mean(self):
        assert exact_mean([1, 2]) == Fraction(3, 2)

    def test_exact_mean_empty_raises(self):
        with pytest.raises(ValueError):
            exact_mean([])
