"""Tests for the frozen multiset."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.multiset import FrozenMultiset


class TestConstruction:
    def test_from_iterable(self):
        ms = FrozenMultiset("abca")
        assert ms["a"] == 2
        assert ms["b"] == 1
        assert ms["z"] == 0

    def test_from_mapping_drops_zeros(self):
        ms = FrozenMultiset({"a": 2, "b": 0})
        assert "b" not in ms
        assert ms == FrozenMultiset("aa")

    def test_negative_multiplicity_rejected(self):
        with pytest.raises(ValueError):
            FrozenMultiset({"a": -1})

    def test_total(self):
        assert FrozenMultiset("aabbb").total == 5
        assert FrozenMultiset().total == 0


class TestEqualityHashing:
    def test_order_irrelevant(self):
        assert FrozenMultiset("abc") == FrozenMultiset("cba")
        assert hash(FrozenMultiset("abc")) == hash(FrozenMultiset("cba"))

    def test_multiplicity_matters(self):
        assert FrozenMultiset("ab") != FrozenMultiset("abb")

    def test_usable_as_dict_key(self):
        d = {FrozenMultiset("ab"): 1}
        assert d[FrozenMultiset("ba")] == 1

    @given(st.lists(st.integers(0, 5)))
    def test_equal_iff_same_counts(self, items):
        a = FrozenMultiset(items)
        b = FrozenMultiset(reversed(items))
        assert a == b
        assert hash(a) == hash(b)


class TestOperations:
    def test_add_remove_roundtrip(self):
        ms = FrozenMultiset("ab")
        assert ms.add("c").remove("c") == ms

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            FrozenMultiset("ab").remove("z")

    def test_remove_too_many_raises(self):
        with pytest.raises(KeyError):
            FrozenMultiset("ab").remove("a", 2)

    def test_replace_pair(self):
        ms = FrozenMultiset("aab")
        after = ms.replace_pair(("a", "a"), ("b", "c"))
        assert after == FrozenMultiset("bbc")

    def test_replace_pair_needs_both(self):
        ms = FrozenMultiset("ab")
        with pytest.raises(KeyError):
            ms.replace_pair(("a", "a"), ("b", "b"))

    def test_replace_pair_same_element_needs_two(self):
        ms = FrozenMultiset("a")
        with pytest.raises(KeyError):
            ms.replace_pair(("a", "a"), ("b", "b"))

    def test_replace_pair_preserves_total(self):
        ms = FrozenMultiset("aabbc")
        after = ms.replace_pair(("a", "b"), ("c", "c"))
        assert after.total == ms.total

    def test_elements(self):
        assert sorted(FrozenMultiset("aba").elements()) == ["a", "a", "b"]

    def test_union_add(self):
        assert FrozenMultiset("ab").union_add(FrozenMultiset("bc")) == \
            FrozenMultiset("abbc")

    @given(st.lists(st.integers(0, 3), min_size=2),
           st.integers(0, 3), st.integers(0, 3))
    def test_replace_pair_total_invariant(self, items, x, y):
        ms = FrozenMultiset(items)
        old = (items[0], items[1])
        if old[0] == old[1] and ms[old[0]] < 2:
            return
        after = ms.replace_pair(old, (x, y))
        assert after.total == ms.total

    def test_counts_is_fresh_copy(self):
        ms = FrozenMultiset("ab")
        counts = ms.counts()
        counts["a"] = 99
        assert ms["a"] == 1
