"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_counts, build_parser, main


class TestParseCounts:
    def test_basic(self):
        assert _parse_counts("x=3,y=4") == {"x": 3, "y": 4}

    def test_whitespace_tolerant(self):
        assert _parse_counts(" x = 3 , y = 4 ") == {"x": 3, "y": 4}

    def test_rejects_missing_value(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_counts("x")

    def test_rejects_non_integer(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_counts("x=three")

    def test_rejects_empty(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_counts("")


class TestQeCommand:
    def test_prints_quantifier_free_form(self, capsys):
        assert main(["qe", "E k. x = 2*k"]) == 0
        out = capsys.readouterr().out
        assert "2 |" in out

    def test_parse_error_propagates(self):
        from repro.presburger.parser import ParseError

        with pytest.raises(ParseError):
            main(["qe", "x <"])


class TestSimulateCommand:
    def test_positive_verdict(self, capsys):
        code = main(["simulate", "20*e >= e + h", "--counts", "e=2,h=38",
                     "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict : 1" in out

    def test_negative_verdict(self, capsys):
        code = main(["simulate", "x >= 3", "--counts", "x=1,pad=5",
                     "--seed", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict : 0" in out

    def test_budget_too_small_reports_failure(self, capsys):
        code = main(["simulate", "x = y", "--counts", "x=6,y=6",
                     "--seed", "1", "--max-steps", "1",
                     "--patience", "1000000"])
        assert code == 1


class TestVerifyCommand:
    def test_holds(self, capsys):
        assert main(["verify", "x < y", "--size", "4"]) == 0
        assert "HOLDS" in capsys.readouterr().out

    def test_small_size(self, capsys):
        assert main(["verify", "x = 0 mod 2", "--size", "3"]) == 0


class TestExactCommand:
    def test_probabilities_printed(self, capsys):
        code = main(["exact", "x = 1 mod 2", "--counts", "x=3,pad=2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "P[output 1] = 1.0" in out
        assert "E[interactions to convergence]" in out


class TestProtocolsCommand:
    def test_lists_catalogue(self, capsys):
        assert main(["protocols"]) == 0
        out = capsys.readouterr().out
        assert "count-to-k" in out
        assert "flock-of-birds" in out


class TestRunCommand:
    def test_builtin_protocol(self, capsys):
        code = main(["run", "count-to-k", "--counts", "1=6,0=14",
                     "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict  : 1" in out
        assert "truth    : 1" in out

    def test_parameterized(self, capsys):
        code = main(["run", "count-to-k", "--counts", "1=3,0=5",
                     "--params", "k=3", "--seed", "1"])
        assert code == 0
        assert "verdict  : 1" in capsys.readouterr().out

    def test_unknown_protocol(self):
        with pytest.raises(KeyError):
            main(["run", "warp-drive", "--counts", "1=3"])

    def test_function_protocol_prints_outputs(self, capsys):
        code = main(["run", "quotient-3", "--counts", "1=7,0=5",
                     "--seed", "3", "--patience", "5000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "protocol : quotient-3" in out


class TestRobustnessCommand:
    def test_emits_resilience_table(self, capsys):
        code = main(["robustness", "--protocol", "epidemic",
                     "--trials", "3", "--seed", "1",
                     "--patience", "2000", "--max-steps", "50000"])
        out = capsys.readouterr().out
        assert code == 0
        lines = out.strip().splitlines()
        assert lines[0].startswith("protocol")
        assert "no faults" in out
        # Fault-free epidemic is always right.
        assert " 1.00" in out

    def test_accepts_snake_case_and_repeats(self, capsys):
        code = main(["robustness", "--protocol", "count_to_k",
                     "--protocol", "redundant-count-to-k",
                     "--trials", "2", "--seed", "1",
                     "--patience", "2000", "--max-steps", "50000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "count-to-k" in out
        assert "redundant-count-to-k" in out
        assert "crash token holder (pile >= 3)" in out

    def test_unknown_protocol_is_clean_error(self, capsys):
        code = main(["robustness", "--protocol", "warp-drive"])
        captured = capsys.readouterr()
        assert code == 1
        assert "unknown protocol" in captured.err

    def test_non_predicate_protocol_is_clean_error(self, capsys):
        code = main(["robustness", "--protocol", "quotient-3"])
        captured = capsys.readouterr()
        assert code == 1
        assert "does not compute a predicate" in captured.err


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])
