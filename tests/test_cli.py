"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_counts, build_parser, main


class TestParseCounts:
    def test_basic(self):
        assert _parse_counts("x=3,y=4") == {"x": 3, "y": 4}

    def test_whitespace_tolerant(self):
        assert _parse_counts(" x = 3 , y = 4 ") == {"x": 3, "y": 4}

    def test_rejects_missing_value(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_counts("x")

    def test_rejects_non_integer(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_counts("x=three")

    def test_rejects_empty(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_counts("")


class TestQeCommand:
    def test_prints_quantifier_free_form(self, capsys):
        assert main(["qe", "E k. x = 2*k"]) == 0
        out = capsys.readouterr().out
        assert "2 |" in out

    def test_parse_error_propagates(self):
        from repro.presburger.parser import ParseError

        with pytest.raises(ParseError):
            main(["qe", "x <"])


class TestSimulateCommand:
    def test_positive_verdict(self, capsys):
        code = main(["simulate", "20*e >= e + h", "--counts", "e=2,h=38",
                     "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict : 1" in out

    def test_negative_verdict(self, capsys):
        code = main(["simulate", "x >= 3", "--counts", "x=1,pad=5",
                     "--seed", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict : 0" in out

    def test_budget_too_small_reports_failure(self, capsys):
        code = main(["simulate", "x = y", "--counts", "x=6,y=6",
                     "--seed", "1", "--max-steps", "1",
                     "--patience", "1000000"])
        assert code == 1


class TestVerifyCommand:
    def test_holds(self, capsys):
        assert main(["verify", "x < y", "--size", "4"]) == 0
        assert "HOLDS" in capsys.readouterr().out

    def test_small_size(self, capsys):
        assert main(["verify", "x = 0 mod 2", "--size", "3"]) == 0


class TestExactCommand:
    def test_probabilities_printed(self, capsys):
        code = main(["exact", "x = 1 mod 2", "--counts", "x=3,pad=2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "P[output 1] = 1.0" in out
        assert "E[interactions to convergence]" in out


class TestProtocolsCommand:
    def test_lists_catalogue(self, capsys):
        assert main(["protocols"]) == 0
        out = capsys.readouterr().out
        assert "count-to-k" in out
        assert "flock-of-birds" in out


class TestRunCommand:
    def test_builtin_protocol(self, capsys):
        code = main(["run", "count-to-k", "--counts", "1=6,0=14",
                     "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict  : 1" in out
        assert "truth    : 1" in out

    def test_parameterized(self, capsys):
        code = main(["run", "count-to-k", "--counts", "1=3,0=5",
                     "--params", "k=3", "--seed", "1"])
        assert code == 0
        assert "verdict  : 1" in capsys.readouterr().out

    def test_unknown_protocol(self):
        with pytest.raises(KeyError):
            main(["run", "warp-drive", "--counts", "1=3"])

    def test_function_protocol_prints_outputs(self, capsys):
        code = main(["run", "quotient-3", "--counts", "1=7,0=5",
                     "--seed", "3", "--patience", "5000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "protocol : quotient-3" in out


class TestRobustnessCommand:
    def test_emits_resilience_table(self, capsys):
        code = main(["robustness", "--protocol", "epidemic",
                     "--trials", "3", "--seed", "1",
                     "--patience", "2000", "--max-steps", "50000"])
        out = capsys.readouterr().out
        assert code == 0
        lines = out.strip().splitlines()
        assert lines[0].startswith("protocol")
        assert "no faults" in out
        # Fault-free epidemic is always right.
        assert " 1.00" in out

    def test_accepts_snake_case_and_repeats(self, capsys):
        code = main(["robustness", "--protocol", "count_to_k",
                     "--protocol", "redundant-count-to-k",
                     "--trials", "2", "--seed", "1",
                     "--patience", "2000", "--max-steps", "50000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "count-to-k" in out
        assert "redundant-count-to-k" in out
        assert "crash token holder (pile >= 3)" in out

    def test_unknown_protocol_is_clean_error(self, capsys):
        code = main(["robustness", "--protocol", "warp-drive"])
        captured = capsys.readouterr()
        assert code == 1
        assert "unknown protocol" in captured.err

    def test_non_predicate_protocol_is_clean_error(self, capsys):
        code = main(["robustness", "--protocol", "quotient-3"])
        captured = capsys.readouterr()
        assert code == 1
        assert "does not compute a predicate" in captured.err


class TestJsonOutput:
    def test_run_json_payload(self, capsys):
        import json

        code = main(["run", "count-to-k", "--counts", "1=6,0=14",
                     "--seed", "1", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["protocol"] == "count-to-k"
        assert payload["n"] == 20
        assert payload["output"] == 1
        assert payload["truth"] == 1
        assert payload["correct"] is True
        assert payload["input"] == {"0": 14, "1": 6}

    def test_robustness_json_rows(self, capsys):
        import json

        code = main(["robustness", "--protocol", "epidemic",
                     "--trials", "2", "--seed", "1",
                     "--patience", "2000", "--max-steps", "50000",
                     "--json"])
        rows = json.loads(capsys.readouterr().out)
        assert code == 0
        assert rows[0]["protocol"] == "epidemic"
        assert rows[0]["scenario"] == "no faults"
        assert rows[0]["rate"] == 1.0


EXP_FLAGS = ["--protocol", "epidemic", "--ns", "6,8", "--trials", "2",
             "--input", "ones:1", "--patience", "500",
             "--max-steps", "20000", "--seed", "3"]


class TestExpRunCommand:
    def test_inline_sweep_prints_report(self, capsys):
        code = main(["exp", "run"] + EXP_FLAGS)
        out = capsys.readouterr().out
        assert code == 0
        assert "plan     : 4 trials (4 executed, 0 resumed)" in out
        assert "mean converged_at" in out
        assert "fitted exponent" in out

    def test_store_enables_resume(self, tmp_path, capsys):
        store = str(tmp_path / "sweep.jsonl")
        assert main(["exp", "run", "--store", store] + EXP_FLAGS) == 0
        first = capsys.readouterr().out
        assert "(4 executed, 0 resumed)" in first

        assert main(["exp", "run", "--store", store] + EXP_FLAGS) == 0
        second = capsys.readouterr().out
        assert "(0 executed, 4 resumed)" in second

    def test_spec_file(self, tmp_path, capsys):
        from repro.exp.spec import ExperimentSpec, InputGrid, StopRule

        spec = ExperimentSpec(protocol="epidemic", ns=(6,), trials=2,
                              inputs=InputGrid(kind="ones", ones=1),
                              stop=StopRule(patience=500,
                                            max_steps=20_000), seed=3)
        path = tmp_path / "spec.json"
        path.write_text(spec.canonical_json(), encoding="utf-8")
        code = main(["exp", "run", "--spec", str(path)])
        assert code == 0
        assert "2 trials" in capsys.readouterr().out

    def test_json_report(self, capsys):
        import json

        code = main(["exp", "run", "--json"] + EXP_FLAGS)
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["executed"] == 4
        assert [p["n"] for p in payload["points"]] == [6, 8]

    def test_workers_flag_matches_serial_output(self, capsys):
        assert main(["exp", "run", "--json"] + EXP_FLAGS) == 0
        serial = capsys.readouterr().out
        assert main(["exp", "run", "--json", "--workers", "2"]
                    + EXP_FLAGS) == 0
        parallel = capsys.readouterr().out
        # --json omits executed/skipped differences only when equal; here
        # both run everything, so the whole payload must match bytewise.
        assert serial == parallel

    def test_fleet_flag_matches_serial_output(self, capsys):
        import json

        assert main(["exp", "run", "--json"] + EXP_FLAGS) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(["exp", "run", "--json", "--fleet", "--workers", "2"]
                    + EXP_FLAGS) == 0
        fleet = json.loads(capsys.readouterr().out)
        assert fleet["fleet"]["workers"] == 2
        assert fleet["points"] == serial["points"]

    def test_fleet_store_resume(self, tmp_path, capsys):
        store = str(tmp_path / "sweep.jsonl")
        assert main(["exp", "run", "--store", store, "--fleet",
                     "--workers", "2"] + EXP_FLAGS) == 0
        first = capsys.readouterr().out
        assert "(4 executed, 0 resumed)" in first
        assert "fleet    : 2 warm workers" in first

        assert main(["exp", "run", "--store", store, "--fleet",
                     "--workers", "2"] + EXP_FLAGS) == 0
        assert "(0 executed, 4 resumed)" in capsys.readouterr().out

    def test_missing_protocol_is_clean_error(self, capsys):
        code = main(["exp", "run", "--ns", "6"])
        captured = capsys.readouterr()
        assert code == 1
        assert "--protocol" in captured.err

    def test_unknown_protocol_is_clean_error(self, capsys):
        code = main(["exp", "run", "--protocol", "warp-drive",
                     "--ns", "6", "--trials", "1"])
        assert code == 1
        assert "warp-drive" in capsys.readouterr().err

    def test_fault_needs_intensities(self, capsys):
        code = main(["exp", "run", "--fault", "omission-rate"] + EXP_FLAGS)
        assert code == 1
        assert "--intensities" in capsys.readouterr().err


class TestExpReportCommand:
    def run_sweep(self, tmp_path) -> str:
        store = str(tmp_path / "sweep.jsonl")
        assert main(["exp", "run", "--store", store] + EXP_FLAGS) == 0
        return store

    def test_reads_store(self, tmp_path, capsys):
        store = self.run_sweep(tmp_path)
        capsys.readouterr()
        assert main(["exp", "report", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "mean converged_at" in out

    def test_csv_exports(self, tmp_path, capsys):
        store = self.run_sweep(tmp_path)
        trials = tmp_path / "trials.csv"
        summary = tmp_path / "summary.csv"
        code = main(["exp", "report", "--store", store,
                     "--csv", str(trials), "--summary-csv", str(summary)])
        assert code == 0
        assert trials.read_text().startswith("n,")
        assert len(summary.read_text().strip().splitlines()) == 3

    def test_json(self, tmp_path, capsys):
        import json

        store = self.run_sweep(tmp_path)
        capsys.readouterr()
        assert main(["exp", "report", "--store", store, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["points"]) == 2

    def test_headerless_store_is_clean_error(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("", encoding="utf-8")
        assert main(["exp", "report", "--store", str(path)]) == 1
        assert "header" in capsys.readouterr().err


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_exp_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["exp"])


CHAOS_GOOD_FLAGS = ["--protocol", "epidemic", "--ns", "8", "--trials", "2",
                    "--monitors", "conservation,containment,flicker",
                    "--confirm", "500", "--patience", "400",
                    "--max-steps", "40000", "--seed", "0"]

CHAOS_BAD_FLAGS = ["--protocol", "majority", "--ns", "10",
                   "--input", "ones:6", "--fault", "corruption-rate",
                   "--intensities", "0.005", "--trials", "2",
                   "--monitors", "conservation,containment,flicker",
                   "--confirm", "4000", "--patience", "600",
                   "--max-steps", "60000", "--seed", "0"]


class TestChaosRunCommand:
    def test_known_good_protocol_has_no_violations(self, capsys):
        code = main(["chaos", "run", "--fail-on-violation"]
                    + CHAOS_GOOD_FLAGS)
        out = capsys.readouterr().out
        assert code == 0
        assert "violations: 0 / 2 trials" in out

    def test_known_bad_protocol_violates_and_fails(self, capsys):
        code = main(["chaos", "run", "--fail-on-violation"]
                    + CHAOS_BAD_FLAGS)
        out = capsys.readouterr().out
        assert code == 1
        assert "[flicker]" in out

    def test_shrink_then_replay_round_trip(self, tmp_path, capsys):
        artifact = str(tmp_path / "repro.json")
        code = main(["chaos", "run", "--shrink", artifact]
                    + CHAOS_BAD_FLAGS)
        out = capsys.readouterr().out
        assert code == 0  # no --fail-on-violation
        assert "shrunk   :" in out

        code = main(["chaos", "replay", artifact])
        out = capsys.readouterr().out
        assert code == 0
        assert "REPRODUCED" in out

    def test_replay_json_payload(self, tmp_path, capsys):
        import json

        artifact = str(tmp_path / "repro.json")
        assert main(["chaos", "run", "--shrink", artifact]
                    + CHAOS_BAD_FLAGS) == 0
        capsys.readouterr()
        assert main(["chaos", "replay", artifact, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["reproduced"] is True
        assert payload["actual"]["step"] == payload["expected"]["step"]

    def test_scheduler_axis_in_report(self, capsys):
        code = main(["chaos", "run", "--schedulers",
                     "uniform,eclipse:budget=500"] + CHAOS_GOOD_FLAGS)
        out = capsys.readouterr().out
        assert code == 0
        assert "eclipse:budget=500" in out

    def test_store_enables_resume(self, tmp_path, capsys):
        store = str(tmp_path / "chaos.jsonl")
        assert main(["chaos", "run", "--store", store]
                    + CHAOS_GOOD_FLAGS) == 0
        assert "(2 executed, 0 resumed)" in capsys.readouterr().out
        assert main(["chaos", "run", "--store", store]
                    + CHAOS_GOOD_FLAGS) == 0
        assert "(0 executed, 2 resumed)" in capsys.readouterr().out

    def test_monitors_are_required(self, tmp_path, capsys):
        from repro.exp.spec import ExperimentSpec, InputGrid, StopRule

        spec = ExperimentSpec(protocol="epidemic", ns=(6,), trials=1,
                              inputs=InputGrid(kind="ones", ones=1),
                              stop=StopRule(patience=500,
                                            max_steps=20_000), seed=3)
        path = tmp_path / "spec.json"
        path.write_text(spec.canonical_json(), encoding="utf-8")
        code = main(["chaos", "run", "--spec", str(path)])
        assert code == 1
        assert "--monitors" in capsys.readouterr().err

    def test_replay_missing_artifact_is_clean_error(self, capsys):
        code = main(["chaos", "replay", "/nonexistent/repro.json"])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestChaosParser:
    def test_chaos_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos"])


class TestBenchCommand:
    def test_smoke_writes_baseline_and_gates_against_it(self, tmp_path,
                                                        capsys):
        out = tmp_path / "bench.json"
        assert main(["bench", "--smoke", "--repeats", "1",
                     "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "speedup" in text
        assert out.exists()
        # A fresh run against its own baseline passes the gate.
        assert main(["bench", "--smoke", "--repeats", "1",
                     "--baseline", str(out)]) == 0

    def test_regression_fails_the_gate(self, tmp_path, capsys):
        import json

        out = tmp_path / "bench.json"
        assert main(["bench", "--smoke", "--repeats", "1",
                     "--out", str(out)]) == 0
        capsys.readouterr()
        # Inflate the baseline: the machine "was" 100x faster.
        payload = json.loads(out.read_text())
        for row in payload["rows"]:
            row["ips"] *= 100
        out.write_text(json.dumps(payload))
        code = main(["bench", "--smoke", "--repeats", "1",
                     "--baseline", str(out)])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_json_payload(self, capsys):
        import json

        assert main(["bench", "--smoke", "--repeats", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["regressions"] == []
        assert {r["engine"] for r in payload["rows"]} >= {
            "multiset", "batched-multiset", "agent", "batched-agent"}
        assert all(s["speedup"] > 0 for s in payload["speedups"])

    def test_missing_baseline_is_clean_error(self, capsys):
        code = main(["bench", "--smoke", "--repeats", "1",
                     "--baseline", "/nonexistent/bench.json"])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestExpEngineFlag:
    def test_batched_engine_runs(self, capsys):
        code = main(["exp", "run", "--protocol", "leader-election",
                     "--ns", "16", "--trials", "2", "--stop", "silent",
                     "--engine", "batched", "--json"])
        assert code == 0

    def test_batched_engine_accepts_fault_axis(self, capsys):
        code = main(["exp", "run", "--protocol", "leader-election",
                     "--ns", "16", "--trials", "1",
                     "--engine", "batched",
                     "--fault", "crash-rate", "--intensities", "0.1",
                     "--json"])
        assert code == 0

    def test_batched_engine_rejects_scalar_only_monitors(self, capsys):
        code = main(["chaos", "run", "--protocol", "leader-election",
                     "--ns", "16", "--trials", "1",
                     "--engine", "batched", "--monitors", "fairness",
                     "--confirm", "0"])
        assert code == 1
        err = capsys.readouterr().err
        assert "batched" in err and "fairness" in err


class TestBackendFlag:
    def test_exp_run_with_python_backend(self, capsys):
        import json

        code = main(["exp", "run", "--protocol", "leader-election",
                     "--ns", "20", "--trials", "2", "--stop", "silent",
                     "--engine", "batched", "--backend", "python",
                     "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["backend"] == "python"
        assert payload["executed"] == 2

    def test_default_spec_carries_no_backend_field(self, capsys):
        import json

        code = main(["exp", "run", "--protocol", "leader-election",
                     "--ns", "20", "--trials", "2", "--stop", "silent",
                     "--engine", "batched", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        # Hash preservation: the defaulted backend stays out of the
        # serialized spec, so pre-backend spec hashes are unchanged.
        assert "backend" not in payload["spec"]

    def test_backend_requires_backend_capable_engine(self, capsys):
        code = main(["exp", "run", "--protocol", "leader-election",
                     "--ns", "20", "--trials", "1",
                     "--backend", "python", "--json"])
        assert code == 1
        assert "step-kernel backends" in capsys.readouterr().err

    def test_unknown_backend_rejected_by_parser(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["exp", "run", "--protocol", "epidemic",
                               "--ns", "20", "--backend", "cuda"])

    def test_chaos_run_accepts_backend(self, capsys):
        code = main(["chaos", "run", "--protocol", "leader-election",
                     "--ns", "20", "--trials", "1",
                     "--engine", "batched", "--backend", "python",
                     "--fault", "crash-rate", "--intensities", "0.1",
                     "--confirm", "0", "--json"])
        assert code == 0


class TestDoctorCommand:
    def test_reports_versions_and_backends(self, capsys):
        assert main(["doctor"]) == 0
        out = capsys.readouterr().out
        assert "versions:" in out
        assert "numpy" in out and "python" in out and "numba" in out
        assert "kernel backends" in out

    def test_json_payload(self, capsys):
        import json

        assert main(["doctor", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["default_backend"] == "numpy"
        assert payload["versions"]["numpy"]
        by_name = {b["name"]: b for b in payload["backends"]}
        assert by_name["numpy"]["available"]
        assert by_name["python"]["available"]
        if payload["versions"]["numba"] is None:
            assert not by_name["numba"]["available"]
            assert "numba is not importable" in by_name["numba"]["reason"]
        else:
            assert by_name["numba"]["available"]

    def test_reports_fleet_eligibility(self, capsys):
        assert main(["doctor"]) == 0
        out = capsys.readouterr().out
        assert "worker fleet" in out
        assert "start method" in out
        assert "shared memory" in out

    def test_json_fleet_payload(self, capsys):
        import json

        assert main(["doctor", "--json"]) == 0
        fleet = json.loads(capsys.readouterr().out)["fleet"]
        assert fleet["start_method"] in ("fork", "forkserver", "spawn")
        assert isinstance(fleet["shared_memory"]["available"], bool)
        assert fleet["ring_bytes"] > 0
        assert isinstance(fleet["numba"]["warm_kernels"], list)
