"""Tests for configuration-graph reachability."""

import pytest

from repro.analysis.reachability import (
    ConfigurationGraph,
    is_reachable,
    reachable_configurations,
)
from repro.protocols.counting import CountToK, count_to_five
from repro.protocols.leader import FOLLOWER, LEADER, LeaderElection
from repro.util.multiset import FrozenMultiset


class TestConfigurationGraph:
    def test_count_to_two_structure(self):
        p = CountToK(2)
        root = FrozenMultiset({1: 2})
        graph = ConfigurationGraph(p, [root])
        # {1,1} -> {2,2} (alert both) is the only move.
        assert set(graph.successors[root]) == {FrozenMultiset({2: 2})}
        assert len(graph) == 2

    def test_roots_first(self):
        p = CountToK(2)
        root = FrozenMultiset({1: 2, 0: 1})
        graph = ConfigurationGraph(p, [root])
        assert graph.configurations[0] == root

    def test_multiple_roots(self):
        p = CountToK(2)
        roots = [FrozenMultiset({1: 2}), FrozenMultiset({0: 2})]
        graph = ConfigurationGraph(p, roots)
        assert all(r in graph.successors for r in roots)

    def test_edges_iterate(self):
        p = LeaderElection()
        root = FrozenMultiset({LEADER: 3})
        graph = ConfigurationGraph(p, [root])
        edges = list(graph.edges())
        assert (root, FrozenMultiset({LEADER: 2, FOLLOWER: 1})) in edges

    def test_budget_guard(self):
        p = count_to_five()
        root = FrozenMultiset({1: 30, 0: 30})
        with pytest.raises(MemoryError):
            ConfigurationGraph(p, [root], max_configurations=10)

    def test_leader_election_chain_length(self):
        # With n leaders the reachable configurations are exactly
        # {i leaders, n - i followers} for 1 <= i <= n.
        n = 6
        graph = ConfigurationGraph(LeaderElection(), [FrozenMultiset({LEADER: n})])
        assert len(graph) == n


class TestReachableConfigurations:
    def test_count_to_five_token_invariant(self):
        p = count_to_five()
        root = FrozenMultiset({1: 3, 0: 2})
        for config in reachable_configurations(p, root):
            tokens = sum(state * count for state, count in config.items())
            assert tokens == 3  # below the alert threshold, tokens conserved


class TestIsReachable:
    def test_positive(self):
        p = CountToK(3)
        source = FrozenMultiset({1: 3})
        target = FrozenMultiset({3: 3})
        assert is_reachable(p, source, target)

    def test_negative(self):
        p = CountToK(3)
        source = FrozenMultiset({1: 2, 0: 1})
        target = FrozenMultiset({3: 3})
        assert not is_reachable(p, source, target)

    def test_reflexive(self):
        p = CountToK(3)
        config = FrozenMultiset({0: 3})
        assert is_reachable(p, config, config)


class TestWitnessPath:
    def test_shortest_path_found(self):
        from repro.analysis.reachability import witness_path
        from repro.protocols.counting import CountToK

        p = CountToK(3)
        source = FrozenMultiset({1: 3})
        target = FrozenMultiset({3: 3})
        path = witness_path(p, source, target)
        assert path is not None
        assert path[0] == source
        assert path[-1] == target
        # Each hop is one interaction.
        from repro.core.semantics import successors

        for a, b in zip(path, path[1:]):
            assert b in successors(p, a)
        # Minimal: merge (1+1=2), alert the pair (2+1 >= 3), then convert
        # the remaining agent — three hops, four configurations.
        assert len(path) == 4

    def test_unreachable_returns_none(self):
        from repro.analysis.reachability import witness_path
        from repro.protocols.counting import CountToK

        p = CountToK(3)
        assert witness_path(p, FrozenMultiset({1: 2, 0: 1}),
                            FrozenMultiset({3: 3})) is None

    def test_trivial_path(self):
        from repro.analysis.reachability import witness_path
        from repro.protocols.counting import CountToK

        p = CountToK(3)
        config = FrozenMultiset({0: 3})
        assert witness_path(p, config, config) == [config]
