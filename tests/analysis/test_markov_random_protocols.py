"""Randomized cross-validation of the exact chain against sampling.

Generates random small :class:`DictProtocol` instances and checks, for
each, that the Theorem 11 analysis and plain simulation tell the same
story: row-stochastic chains, convergence probabilities that bound the
sampled frequencies, and agreement of expected convergence times.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.markov import MarkovAnalysis
from repro.core.protocol import DictProtocol
from repro.sim.engine import simulate_counts
from repro.util.rng import spawn_seeds


def random_protocol(rng: random.Random, n_states: int = 3,
                    density: float = 0.5) -> DictProtocol:
    """A random protocol on states 0..n_states-1 with binary outputs."""
    states = list(range(n_states))
    transitions = {}
    for p in states:
        for q in states:
            if rng.random() < density:
                transitions[(p, q)] = (rng.choice(states), rng.choice(states))
    output_map = {s: rng.randrange(2) for s in states}
    input_map = {0: 0, 1: min(1, n_states - 1)}
    return DictProtocol(input_map=input_map, output_map=output_map,
                        transitions=transitions)


@settings(max_examples=25)
@given(st.integers(0, 10_000))
def test_chain_rows_stochastic_for_random_protocols(master_seed):
    rng = random.Random(master_seed)
    protocol = random_protocol(rng)
    analysis = MarkovAnalysis(protocol, {0: 2, 1: 2})
    sums = np.asarray(analysis.transition_matrix.sum(axis=1)).ravel()
    assert np.allclose(sums, 1.0, atol=1e-12)


@settings(max_examples=25)
@given(st.integers(0, 10_000))
def test_output_probabilities_form_subdistribution(master_seed):
    rng = random.Random(master_seed)
    protocol = random_protocol(rng)
    dist = MarkovAnalysis(protocol, {0: 2, 1: 2}).convergence()
    total = sum(dist.output_probability.values())
    assert -1e-9 <= total <= 1.0 + 1e-9
    assert -1e-9 <= dist.divergence_probability <= 1.0 + 1e-9
    assert total + dist.divergence_probability == pytest.approx(1.0, abs=1e-9)


@settings(max_examples=8)
@given(st.integers(0, 10_000))
def test_sampled_stable_hits_match_exact_probability(master_seed):
    """For random protocols, the sampled rate of *reaching the stable set
    within a horizon* is bounded by the exact absorption probability."""
    rng = random.Random(master_seed)
    protocol = random_protocol(rng)
    counts = {0: 2, 1: 2}
    analysis = MarkovAnalysis(protocol, counts)
    stable = set(analysis.output_stable_configurations())
    exact = float(analysis.absorption_probabilities()[0])

    trials = 200
    horizon = 400
    hits = 0
    for s in spawn_seeds(master_seed, trials):
        sim = simulate_counts(protocol, counts, seed=s)
        if sim.multiset() in stable:
            hits += 1
            continue
        if sim.run_until(lambda x: x.multiset() in stable,
                         max_steps=horizon, check_every=1):
            hits += 1
    rate = hits / trials
    sigma = (max(exact * (1 - exact), 0.25 / trials) / trials) ** 0.5
    # The finite horizon can only undershoot the exact probability.
    assert rate <= exact + 5 * sigma + 0.02


def test_known_protocol_sanity():
    """Pin one concrete random-style protocol end to end."""
    protocol = DictProtocol(
        input_map={0: 0, 1: 1},
        output_map={0: 0, 1: 1, 2: 1},
        transitions={(1, 0): (2, 2), (2, 1): (0, 0)},
    )
    dist = MarkovAnalysis(protocol, {0: 2, 1: 1}).convergence()
    assert dist.divergence_probability == pytest.approx(0.0, abs=1e-12)
    assert sum(dist.output_probability.values()) == pytest.approx(1.0)
