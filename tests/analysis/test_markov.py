"""Tests for the exact Markov-chain analysis (Theorem 11)."""

import math

import pytest

from repro.analysis.markov import MarkovAnalysis, exact_output_distribution
from repro.protocols.counting import CountToK, count_to_five
from repro.protocols.leader import LEADER, LeaderElection
from repro.protocols.majority import majority_protocol
from repro.protocols.remainder import parity_protocol
from repro.sim.engine import simulate_counts
from repro.util.multiset import FrozenMultiset


class TestChainConstruction:
    def test_rows_are_stochastic(self):
        analysis = MarkovAnalysis(count_to_five(), {1: 3, 0: 2})
        import numpy as np

        matrix = analysis.transition_matrix
        sums = np.asarray(matrix.sum(axis=1)).ravel()
        for value in sums:
            assert math.isclose(float(value), 1.0, abs_tol=1e-12)

    def test_input_arguments_exclusive(self):
        with pytest.raises(ValueError):
            MarkovAnalysis(count_to_five(), {1: 3}, root=FrozenMultiset({1: 3}))

    def test_root_is_first(self):
        analysis = MarkovAnalysis(count_to_five(), {1: 2, 0: 2})
        assert analysis.configs[0] == FrozenMultiset({1: 2, 0: 2})


class TestStableSet:
    def test_alert_configs_stable(self):
        analysis = MarkovAnalysis(CountToK(2), {1: 2, 0: 1})
        stable = analysis.output_stable_configurations()
        assert FrozenMultiset({2: 3}) in stable

    def test_stable_output_of(self):
        analysis = MarkovAnalysis(CountToK(2), {1: 2, 0: 1})
        assert analysis.stable_output_of(FrozenMultiset({2: 3})) == 1
        assert analysis.stable_output_of(FrozenMultiset({1: 2, 0: 1})) is None

    def test_closed_classes_exist(self):
        analysis = MarkovAnalysis(count_to_five(), {1: 5})
        classes = analysis.closed_classes()
        assert classes
        assert any(FrozenMultiset({5: 5}) in cls for cls in classes)


class TestLeaderElectionExpectation:
    """Exact (n-1)^2 from the chain (the paper's Sect. 6 formula)."""

    @pytest.mark.parametrize("n", [2, 3, 5, 7])
    def test_expected_time(self, n):
        analysis = MarkovAnalysis(LeaderElection(), {1: n})
        assert analysis.expected_convergence_interactions() == \
            pytest.approx((n - 1) ** 2, rel=1e-9)


class TestConvergenceDistribution:
    def test_predicate_protocol_converges_with_probability_one(self):
        dist = exact_output_distribution(parity_protocol(), {1: 3, 0: 2})
        assert dist.divergence_probability == pytest.approx(0.0, abs=1e-12)
        assert dist.output_probability.get(1, 0.0) == pytest.approx(1.0)
        assert math.isfinite(dist.expected_interactions)

    def test_correct_verdict_majority(self):
        dist = exact_output_distribution(majority_protocol(), {0: 2, 1: 3})
        assert dist.output_probability.get(1, 0.0) == pytest.approx(1.0)
        dist = exact_output_distribution(majority_protocol(), {0: 3, 1: 2})
        assert dist.output_probability.get(0, 0.0) == pytest.approx(1.0)

    def test_expected_time_matches_simulation(self, seed):
        """Cross-check the exact expectation against sampled runs."""
        protocol = parity_protocol()
        counts = {1: 3, 0: 3}
        analysis = MarkovAnalysis(protocol, counts)
        exact = analysis.expected_convergence_interactions()

        stable_set = set(analysis.output_stable_configurations())
        total = 0
        trials = 400
        from repro.util.rng import spawn_seeds
        for s in spawn_seeds(seed, trials):
            sim = simulate_counts(protocol, counts, seed=s)
            sim.run_until(lambda sm: sm.multiset() in stable_set,
                          max_steps=100_000, check_every=1)
            total += sim.interactions
        sampled = total / trials
        assert abs(sampled - exact) / exact < 0.15

    def test_divergence_detected_for_oscillator(self):
        from repro.core.protocol import DictProtocol

        blinker = DictProtocol(
            input_map={0: "a"},
            output_map={"a": 0, "b": 1},
            transitions={("a", "a"): ("b", "b"), ("b", "b"): ("a", "a")},
        )
        dist = exact_output_distribution(blinker, {0: 2})
        assert dist.divergence_probability == pytest.approx(1.0)
        assert math.isinf(dist.expected_interactions)

    def test_probabilistic_split(self):
        """A protocol whose verdict is genuinely random: first meeting
        decides.  From (a, a) the chain moves to all-x or all-y with equal
        probability."""
        from repro.core.protocol import DictProtocol

        coin = DictProtocol(
            input_map={0: "a"},
            output_map={"a": 0, "x": 0, "y": 1},
            transitions={
                ("a", "a"): ("x", "x"),
                ("a", "x"): ("x", "x"), ("x", "a"): ("x", "x"),
                ("a", "y"): ("y", "y"), ("y", "a"): ("y", "y"),
                ("x", "y"): ("y", "y"), ("y", "x"): ("y", "y"),
            },
        )
        # From {a, a, y}: a-a meetings push towards x, y meetings towards y.
        dist = MarkovAnalysis(
            coin, root=FrozenMultiset({"a": 2, "y": 1})).convergence()
        total = sum(dist.output_probability.values())
        assert total == pytest.approx(1.0)
        assert 0 < dist.output_probability.get(1, 0) < 1


class TestNonUnanimousStableOutput:
    def test_stable_output_of_returns_multiset(self):
        """A stable configuration whose agents disagree (legal for
        function computations) reports its output multiset."""
        from repro.core.protocol import DictProtocol

        frozen = DictProtocol(
            input_map={0: "a", 1: "b"},
            output_map={"a": 0, "b": 1},
            transitions={},  # nothing ever moves: instantly stable
        )
        analysis = MarkovAnalysis(frozen, {0: 2, 1: 1})
        config = FrozenMultiset({"a": 2, "b": 1})
        stable = analysis.stable_output_of(config)
        assert stable == FrozenMultiset({0: 2, 1: 1})

    def test_convergence_keys_by_output_multiset(self):
        from repro.core.protocol import DictProtocol

        frozen = DictProtocol(
            input_map={0: "a", 1: "b"},
            output_map={"a": 0, "b": 1},
            transitions={},
        )
        dist = MarkovAnalysis(frozen, {0: 2, 1: 1}).convergence()
        assert dist.divergence_probability == pytest.approx(0.0)
        (key, probability), = dist.output_probability.items()
        assert probability == pytest.approx(1.0)
        assert key == FrozenMultiset({0: 2, 1: 1})
