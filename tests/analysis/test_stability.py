"""Tests for output stability and the stable-computation model checker."""

import pytest

from repro.analysis.stability import (
    all_inputs_of_size,
    is_output_stable,
    verify_predicate_on_input,
    verify_stable_computation,
)
from repro.core.protocol import DictProtocol
from repro.protocols.counting import CountToK, count_to_five
from repro.util.multiset import FrozenMultiset


class TestIsOutputStable:
    def test_alert_configuration_stable(self):
        p = count_to_five()
        assert is_output_stable(p, FrozenMultiset({5: 3}))

    def test_sub_threshold_terminal_stable(self):
        p = count_to_five()
        # One agent with 4 tokens: states keep swapping but outputs fixed.
        assert is_output_stable(p, FrozenMultiset({4: 1, 0: 4}))

    def test_initial_above_threshold_not_stable(self):
        p = count_to_five()
        assert not is_output_stable(p, FrozenMultiset({1: 5}))


class TestVerifyPredicateOnInput:
    def test_positive_case(self):
        p = count_to_five()
        result = verify_predicate_on_input(p, {1: 5, 0: 2}, True)
        assert result.holds
        assert result.configurations > 1
        assert result.counterexample is None

    def test_wrong_expectation_produces_counterexample(self):
        p = count_to_five()
        result = verify_predicate_on_input(p, {1: 5, 0: 2}, False)
        assert not result.holds
        assert result.counterexample is not None
        assert "expected unanimous 0" in result.reason

    def test_bool_protocol(self):
        p = count_to_five()
        assert bool(verify_predicate_on_input(p, {1: 5, 0: 2}, True))


class TestBrokenProtocolDetected:
    def test_non_converging_protocol_fails(self):
        """A protocol whose output oscillates forever must be rejected."""
        blinker = DictProtocol(
            input_map={0: "a"},
            output_map={"a": 0, "b": 1},
            transitions={("a", "a"): ("b", "b"), ("b", "b"): ("a", "a"),
                         ("a", "b"): ("a", "a"), ("b", "a"): ("b", "b")},
        )
        result = verify_predicate_on_input(blinker, {0: 2}, False)
        assert not result.holds

    def test_disagreeing_final_output_fails(self):
        """A final configuration without unanimity violates the all-agents
        convention."""
        splitter = DictProtocol(
            input_map={0: "a"},
            output_map={"a": 0, "x": 0, "y": 1},
            transitions={("a", "a"): ("x", "y")},
        )
        result = verify_predicate_on_input(splitter, {0: 2}, False)
        assert not result.holds


class TestVerifyStableComputation:
    def test_all_inputs_pass(self):
        p = CountToK(2)
        results = verify_stable_computation(
            p, lambda c: c.get(1, 0) >= 2, all_inputs_of_size([0, 1], 4))
        assert len(results) == 5
        assert all(results)

    def test_wrong_predicate_caught(self):
        p = CountToK(2)
        results = verify_stable_computation(
            p, lambda c: c.get(1, 0) >= 3,  # wrong threshold
            all_inputs_of_size([0, 1], 4))
        assert not all(results)


class TestAllInputsOfSize:
    def test_enumeration(self):
        inputs = list(all_inputs_of_size(["a", "b"], 2))
        assert {tuple(sorted(i.items())) for i in inputs} == {
            (("a", 0), ("b", 2)), (("a", 1), ("b", 1)), (("a", 2), ("b", 0))}

    def test_count_matches_stars_and_bars(self):
        inputs = list(all_inputs_of_size(["a", "b", "c"], 4))
        assert len(inputs) == 15  # C(4 + 2, 2)

    def test_single_symbol(self):
        assert list(all_inputs_of_size(["a"], 3)) == [{"a": 3}]

    def test_empty_alphabet_rejected(self):
        with pytest.raises(ValueError):
            list(all_inputs_of_size([], 3))
