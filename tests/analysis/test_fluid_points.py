"""Tests for fixed-point classification of the mean-field drift."""

import numpy as np
import pytest

from repro.analysis.fluid_points import (
    classify,
    classify_point,
    discrete_witness,
    drift_residual,
    tangent_eigenvalues,
    vertex_fixed_points,
    witness_is_output_stable,
)
from repro.protocols.counting import Epidemic
from repro.protocols.leader import LeaderElection
from repro.protocols.sir import SIREpidemic
from repro.sim.compiled import compile_protocol
from repro.sim.fluid import MeanFieldODE


def _ode(protocol):
    return MeanFieldODE(compile_protocol(protocol))


def _by_state(points, compiled):
    out = {}
    for fp in points:
        (idx,) = np.nonzero(np.array(fp.x))
        out[compiled.states[int(idx[0])]] = fp
    return out


class TestEpidemic:
    def test_vertices_classified(self):
        # Two-way epidemic (0,1)->(1,1) and (1,0)->(1,1): the all-0
        # corner is a repeller (one infection ignites everything), the
        # all-1 corner is exponentially attracting at rate 2 (both
        # ordered pairs react).
        compiled = compile_protocol(Epidemic())
        ode = MeanFieldODE(compiled)
        points = _by_state(vertex_fixed_points(ode), compiled)
        assert points[0].classification == "unstable"
        assert points[1].classification == "stable"
        assert max(e.real for e in points[0].eigenvalues) == pytest.approx(2.0)
        assert max(e.real for e in points[1].eigenvalues) == pytest.approx(-2.0)

    def test_vertex_residuals_are_zero(self):
        ode = _ode(Epidemic())
        for fp in vertex_fixed_points(ode):
            assert fp.residual == pytest.approx(0.0, abs=1e-12)

    def test_interior_is_not_a_fixed_point(self):
        ode = _ode(Epidemic())
        assert drift_residual(ode, np.array([0.5, 0.5])) > 0.1


class TestLeaderElection:
    def test_all_followers_is_marginal(self):
        # Leader election's terminal point (x_L = 0) is approached
        # algebraically, 1/tau, not exponentially: its linearization
        # vanishes and the verdict must be "marginal", not "stable".
        compiled = compile_protocol(LeaderElection())
        ode = MeanFieldODE(compiled)
        points = _by_state(vertex_fixed_points(ode), compiled)
        assert all(fp.classification == "marginal"
                   for fp in points.values()), points

    def test_all_leaders_is_not_a_vertex_fixed_point(self):
        # L is reactive with itself, so the all-L corner has nonzero
        # drift and must not be reported.
        compiled = compile_protocol(LeaderElection())
        ode = MeanFieldODE(compiled)
        points = _by_state(vertex_fixed_points(ode), compiled)
        leader_state = LeaderElection().initial_state(1)
        assert leader_state not in points


class TestSIR:
    def test_vertex_classifications(self):
        compiled = compile_protocol(SIREpidemic())
        ode = MeanFieldODE(compiled)
        points = _by_state(vertex_fixed_points(ode), compiled)
        # All-I: invadable by a recovered seed (rate +1) — unstable.
        assert points["I"].classification == "unstable"
        # All-S: invadable by an infected seed — unstable.
        assert points["S"].classification == "unstable"
        # All-R: immune to both perturbations — marginal (the recovery
        # eigenvalue is -1 but the susceptible direction is inert, 0).
        assert points["R"].classification == "marginal"

    def test_every_vertex_is_an_equilibrium(self):
        # No SIR state reacts with itself, so all three corners are
        # fixed points.
        ode = _ode(SIREpidemic())
        assert len(vertex_fixed_points(ode)) == 3


class TestClassify:
    def test_empty_spectrum_is_stable(self):
        assert classify(np.array([])) == "stable"

    def test_thresholds(self):
        assert classify(np.array([-1.0, -2.0])) == "stable"
        assert classify(np.array([-1.0, 0.5])) == "unstable"
        assert classify(np.array([-1.0, 1e-12])) == "marginal"

    def test_classify_point_round_trip(self):
        ode = _ode(Epidemic())
        fp = classify_point(ode, np.array([0.0, 1.0]))
        assert fp.x == (0.0, 1.0)
        assert fp.classification == "stable"

    def test_tangent_spectrum_drops_the_conservation_mode(self):
        # The full Jacobian always has a left null-direction (mass);
        # the tangent restriction must have exactly k - 1 eigenvalues.
        ode = _ode(SIREpidemic())
        eigs = tangent_eigenvalues(ode, np.array([0.2, 0.3, 0.5]))
        assert len(eigs) == ode.size - 1


class TestDiscreteWitness:
    def test_rounding_preserves_population_size(self):
        ode = _ode(SIREpidemic())
        witness = discrete_witness(ode, np.array([1 / 3, 1 / 3, 1 / 3]), 7)
        assert sum(witness.counts().values()) == 7

    def test_exact_fractions_round_exactly(self):
        compiled = compile_protocol(Epidemic())
        ode = MeanFieldODE(compiled)
        witness = discrete_witness(ode, np.array([0.0, 1.0]), 6)
        assert witness.counts() == {1: 6}

    def test_too_small_population_rejected(self):
        ode = _ode(Epidemic())
        with pytest.raises(ValueError):
            discrete_witness(ode, np.array([0.0, 1.0]), 1)

    def test_stable_vertex_witness_is_output_stable(self):
        # The fluid-stable all-infected corner rounds to a discrete
        # configuration the exact Sect. 3.2 checker certifies.
        protocol = Epidemic()
        ode = _ode(protocol)
        assert witness_is_output_stable(
            protocol, ode, np.array([0.0, 1.0]), 6)

    def test_unstable_vertex_witness_is_still_inert_in_isolation(self):
        # The fluid all-0 corner is unstable against *perturbed* starts,
        # but the exact discrete configuration contains no infected
        # agent at all, so nothing is reachable from it and the Sect. 3.2
        # checker certifies it anyway — the two verdicts answer
        # different questions, and this pins down the distinction.
        protocol = Epidemic()
        ode = _ode(protocol)
        assert witness_is_output_stable(
            protocol, ode, np.array([1.0, 0.0]), 6)
