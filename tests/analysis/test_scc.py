"""Tests for Tarjan SCC and final-component detection."""

import random

from repro.analysis.scc import condensation, final_components, final_nodes, tarjan_scc


class TestTarjan:
    def test_single_cycle(self):
        graph = {1: [2], 2: [3], 3: [1]}
        components = tarjan_scc(graph)
        assert len(components) == 1
        assert sorted(components[0]) == [1, 2, 3]

    def test_dag(self):
        graph = {1: [2], 2: [3], 3: []}
        components = tarjan_scc(graph)
        assert [sorted(c) for c in components] == [[3], [2], [1]]

    def test_reverse_topological_order(self):
        graph = {1: [2, 3], 2: [4], 3: [4], 4: []}
        components = tarjan_scc(graph)
        position = {c[0]: i for i, c in enumerate(components)}
        # Successors appear before their predecessors.
        assert position[4] < position[2]
        assert position[4] < position[3]
        assert position[2] < position[1]

    def test_two_cycles_with_bridge(self):
        graph = {1: [2], 2: [1, 3], 3: [4], 4: [3]}
        components = tarjan_scc(graph)
        comps = sorted(sorted(c) for c in components)
        assert comps == [[1, 2], [3, 4]]

    def test_successor_not_in_keys(self):
        graph = {1: [2]}  # node 2 has no key
        components = tarjan_scc(graph)
        assert sorted(sorted(c) for c in components) == [[1], [2]]

    def test_deep_chain_no_recursion_error(self):
        n = 50_000
        graph = {i: [i + 1] for i in range(n)}
        graph[n] = []
        components = tarjan_scc(graph)
        assert len(components) == n + 1

    def test_matches_networkx_on_random_graphs(self):
        import networkx as nx

        rng = random.Random(0)
        for _ in range(20):
            n = rng.randrange(2, 25)
            edges = [(rng.randrange(n), rng.randrange(n))
                     for _ in range(rng.randrange(1, 3 * n))]
            graph = {i: sorted({v for (u, v) in edges if u == i})
                     for i in range(n)}
            ours = {frozenset(c) for c in tarjan_scc(graph)}
            nx_graph = nx.DiGraph(edges)
            nx_graph.add_nodes_from(range(n))
            theirs = {frozenset(c)
                      for c in nx.strongly_connected_components(nx_graph)}
            assert ours == theirs


class TestCondensation:
    def test_component_edges(self):
        graph = {1: [2], 2: [1, 3], 3: []}
        components, component_of, edges = condensation(graph)
        ci = component_of[1]
        cj = component_of[3]
        assert component_of[2] == ci
        assert edges[ci] == {cj}
        assert edges[cj] == set()

    def test_no_self_edges(self):
        graph = {1: [1, 2], 2: []}
        _, component_of, edges = condensation(graph)
        assert component_of[1] not in edges[component_of[1]]


class TestFinalComponents:
    def test_sink_cycle_final(self):
        graph = {1: [2], 2: [3], 3: [2]}
        finals = final_components(graph)
        assert [sorted(c) for c in finals] == [[2, 3]]

    def test_multiple_finals(self):
        graph = {0: [1, 2], 1: [], 2: []}
        finals = {frozenset(c) for c in final_components(graph)}
        assert finals == {frozenset([1]), frozenset([2])}

    def test_final_nodes(self):
        graph = {0: [1], 1: [2], 2: [1]}
        assert final_nodes(graph) == {1, 2}
