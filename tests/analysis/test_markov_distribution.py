"""Tests for the exact convergence-time distribution (CDF / quantiles)."""

import numpy as np
import pytest

from repro.analysis.markov import MarkovAnalysis
from repro.protocols.leader import LeaderElection
from repro.protocols.remainder import parity_protocol
from repro.sim.engine import simulate_counts
from repro.util.rng import spawn_seeds


class TestTwoAgentElection:
    """n = 2: the first interaction always elects; T = 1 deterministically."""

    def test_cdf_is_step_at_one(self):
        analysis = MarkovAnalysis(LeaderElection(), {1: 2})
        cdf = analysis.convergence_time_cdf(3)
        assert cdf[0] == pytest.approx(0.0)
        assert cdf[1] == pytest.approx(1.0)
        assert cdf[3] == pytest.approx(1.0)

    def test_quantiles(self):
        analysis = MarkovAnalysis(LeaderElection(), {1: 2})
        assert analysis.convergence_time_quantile(0.5) == 1
        assert analysis.convergence_time_quantile(0.99) == 1


class TestThreeAgentElection:
    """n = 3: the first step always eliminates one of three leaders; then
    a leader/leader pair has probability 2/6 per step, so
    ``P[T <= t] = 1 - (2/3)^(t-1)`` for t >= 1 (and E[T] = 1 + 3 = 4)."""

    def test_cdf_geometric(self):
        analysis = MarkovAnalysis(LeaderElection(), {1: 3})
        cdf = analysis.convergence_time_cdf(10)
        assert cdf[0] == pytest.approx(0.0)
        for t in range(1, 11):
            assert cdf[t] == pytest.approx(1 - (2 / 3) ** (t - 1))

    def test_expectation_consistent_with_cdf(self):
        analysis = MarkovAnalysis(LeaderElection(), {1: 3})
        horizon = 200
        cdf = analysis.convergence_time_cdf(horizon)
        # E[T] = sum_{t>=0} P[T > t], truncated (tail negligible).
        expectation = float(np.sum(1.0 - cdf))
        assert expectation == pytest.approx(
            analysis.expected_convergence_interactions(), abs=1e-6)


class TestMonotonicity:
    def test_cdf_monotone_and_bounded(self):
        analysis = MarkovAnalysis(parity_protocol(), {1: 2, 0: 2})
        cdf = analysis.convergence_time_cdf(300)
        assert np.all(np.diff(cdf) >= -1e-12)
        assert 0.0 <= cdf[0] and cdf[-1] <= 1.0 + 1e-12
        assert cdf[-1] > 0.99  # converges with probability 1

    def test_bad_arguments(self):
        analysis = MarkovAnalysis(LeaderElection(), {1: 2})
        with pytest.raises(ValueError):
            analysis.convergence_time_cdf(-1)
        with pytest.raises(ValueError):
            analysis.convergence_time_quantile(1.5)


class TestAgainstSampling:
    def test_median_matches_simulation(self, seed):
        protocol = parity_protocol()
        counts = {1: 3, 0: 2}
        analysis = MarkovAnalysis(protocol, counts)
        median = analysis.convergence_time_quantile(0.5, horizon=100_000)

        stable = set(analysis.output_stable_configurations())
        times = []
        for s in spawn_seeds(seed, 400):
            sim = simulate_counts(protocol, counts, seed=s)
            sim.run_until(lambda x: x.multiset() in stable,
                          max_steps=100_000, check_every=1)
            times.append(sim.interactions)
        times.sort()
        sampled_median = times[len(times) // 2]
        assert abs(sampled_median - median) <= max(3, 0.25 * median)
