"""Tests for chaos-case replay, delta-debug shrinking, and artifacts."""

import json

import pytest

from repro.analysis.shrink import (
    ChaosCase,
    artifact_dict,
    case_from_record,
    dump_artifact,
    load_artifact,
    replay_artifact,
    run_case,
    shrink_case,
    shrink_violation,
)
from repro.exp.spec import StopRule
from repro.sim.schedulers import _parse_scheduler_spec

#: The acceptance-criteria scenario: majority under corruption faults,
#: which trips the flicker monitor (converged verdict later flipped).
BROKEN = ChaosCase(
    protocol="majority",
    counts={1: 6, 0: 4},
    fault={"kind": "corruption-rate", "intensity": 0.005},
    monitors=("conservation", "containment", "flicker"),
    stop=StopRule(rule="quiescent", patience=600, max_steps=60_000),
    confirm=4_000,
    engine_seed=0,
    fault_seed=1_000,
)

GOOD = ChaosCase(
    protocol="epidemic",
    counts={1: 2, 0: 6},
    monitors=("conservation", "containment", "flicker"),
    stop=StopRule(rule="quiescent", patience=400, max_steps=40_000),
    confirm=1_000,
)


class TestRunCase:
    def test_clean_case_produces_no_violation(self):
        outcome = run_case(GOOD)
        assert outcome.violation is None
        assert outcome.error is None
        assert outcome.result is not None and outcome.result.stopped

    def test_broken_case_fails_deterministically(self):
        first = run_case(BROKEN)
        second = run_case(BROKEN)
        assert first.failed and second.failed
        assert first.violation.monitor == second.violation.monitor
        assert first.violation.step == second.violation.step

    def test_trace_records_delivered_faults(self):
        outcome = run_case(BROKEN, trace=True)
        assert outcome.failed
        assert outcome.events  # corruption faults were delivered
        assert all(e["kind"] in ("crash", "corrupt", "omit")
                   for e in outcome.events)

    def test_impossible_case_reports_error(self):
        impossible = ChaosCase(
            protocol="epidemic", counts={1: 3},
            fault={"kind": "crash-at", "intensity": 3, "at_step": 0},
            monitors=("conservation",))
        outcome = run_case(impossible)
        assert not outcome.failed
        assert outcome.error is not None

    def test_round_trips_through_dict(self):
        rebuilt = ChaosCase.from_dict(BROKEN.to_dict())
        assert rebuilt == BROKEN
        assert rebuilt.n == 10


class TestShrink:
    def test_acceptance_scenario_shrinks_by_half(self):
        result = shrink_case(BROKEN)
        # The issue's acceptance bar: at most half the population and at
        # most half the (eventized) fault events of the original.
        assert result.case.n <= BROKEN.n // 2
        assert result.eventized
        assert result.case.fault["kind"] == "events"
        traced = run_case(BROKEN, trace=True)
        assert len(result.case.fault["events"]) <= max(1, len(traced.events) // 2)
        # The minimized case still fails the same monitor.
        assert result.violation["monitor"] == result.original_violation["monitor"]
        assert result.evals <= 400

    def test_shrunk_case_replays_identically(self):
        result = shrink_case(BROKEN)
        outcome = run_case(result.case)
        assert outcome.failed
        assert outcome.violation.monitor == result.violation["monitor"]
        assert outcome.violation.step == result.violation["step"]

    def test_scheduler_budget_shrinks(self):
        # An eclipse budget big enough to trip the watchdog: the shrinker
        # halves the budget while the violation persists.
        case = ChaosCase(
            protocol="epidemic", counts={1: 1, 0: 5},
            scheduler="eclipse:budget=4096",
            monitors=("watchdog:steps=1000",),
            stop=StopRule(rule="silent", max_steps=3_000))
        baseline = run_case(case)
        if not baseline.failed:
            pytest.skip("scenario does not trip the watchdog on this seed")
        result = shrink_case(case)
        kind, args = _parse_scheduler_spec(result.case.scheduler)
        assert kind == "eclipse"
        assert args["budget"] < 4096

    def test_non_failing_case_rejected(self):
        with pytest.raises(ValueError, match="does not fail"):
            shrink_case(GOOD)

    def test_shrink_violation_needs_context(self):
        outcome = run_case(BROKEN)
        # run_case sets monitor_context, so this violation is shrinkable.
        result = shrink_violation(outcome.violation, max_evals=50)
        assert result.case.n <= BROKEN.n

    def test_eval_budget_respected(self):
        result = shrink_case(BROKEN, max_evals=5)
        assert result.evals <= 5


class TestArtifacts:
    def test_artifact_round_trip_reproduces(self, tmp_path):
        result = shrink_case(BROKEN)
        path = tmp_path / "repro.json"
        dump_artifact(path, result)
        artifact = load_artifact(path)
        assert artifact["kind"] == "chaos-repro"
        replay = replay_artifact(artifact)
        assert replay.reproduced
        assert replay.actual["step"] == artifact["violation"]["step"]

    def test_artifact_is_plain_json(self, tmp_path):
        result = shrink_case(BROKEN, max_evals=20)
        data = artifact_dict(result)
        assert json.loads(json.dumps(data)) == data
        assert data["original"]["case"]["counts"] == {"1": 6, "0": 4}

    def test_replay_rejects_foreign_artifacts(self):
        with pytest.raises(ValueError, match="chaos-repro"):
            replay_artifact({"kind": "something-else"})

    def test_tampered_artifact_diverges(self, tmp_path):
        result = shrink_case(BROKEN)
        artifact = artifact_dict(result)
        artifact["violation"]["step"] += 1
        replay = replay_artifact(artifact)
        assert not replay.reproduced


class TestCaseFromRecord:
    def test_rebuilds_from_violation_context(self):
        outcome = run_case(BROKEN)
        record = {"violation": outcome.violation.to_dict()}
        case = case_from_record(record)
        assert case == BROKEN

    def test_unmonitored_record_rejected(self):
        with pytest.raises(ValueError, match="context"):
            case_from_record({"violation": None})
