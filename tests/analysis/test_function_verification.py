"""Tests for exact function-computation verification.

Model-checks the paper's integer-function protocols (quotient, difference,
min, max) exhaustively: every final SCC must have an output-preserving
(frozen) output assignment that decodes to the right value.
"""

import pytest

from repro.analysis.stability import verify_function_on_input
from repro.core.protocol import DictProtocol
from repro.protocols.arithmetic import (
    DifferenceProtocol,
    MaxProtocol,
    MinProtocol,
    difference_inputs,
    min_max_inputs,
)
from repro.protocols.quotient import QuotientProtocol, QuotientRemainderProtocol


def decode_scalar(histogram) -> int:
    return sum(output * count for output, count in histogram.items())


def decode_pair(histogram) -> tuple[int, int]:
    first = sum(output[0] * count for output, count in histogram.items())
    second = sum(output[1] * count for output, count in histogram.items())
    return first, second


class TestQuotientExact:
    @pytest.mark.parametrize("m", range(7))
    def test_quotient_of_m(self, m):
        protocol = QuotientProtocol(3)
        n = 7
        result = verify_function_on_input(
            protocol, {1: m, 0: n - m}, decode_scalar, m // 3)
        assert result.holds, result.reason

    @pytest.mark.parametrize("m", [0, 3, 5])
    def test_quotient_remainder_pair(self, m):
        protocol = QuotientRemainderProtocol(3)
        n = 6
        result = verify_function_on_input(
            protocol, {1: m, 0: n - m}, decode_pair, (m % 3, m // 3))
        assert result.holds, result.reason

    def test_wrong_expectation_caught(self):
        protocol = QuotientProtocol(3)
        result = verify_function_on_input(
            protocol, {1: 5, 0: 2}, decode_scalar, 99)
        assert not result.holds
        assert "decodes to" in result.reason


class TestArithmeticExact:
    @pytest.mark.parametrize("x,y", [(0, 0), (3, 1), (2, 4), (3, 3)])
    def test_difference(self, x, y):
        result = verify_function_on_input(
            DifferenceProtocol(), difference_inputs(x, y, 7),
            decode_scalar, x - y)
        assert result.holds, result.reason

    @pytest.mark.parametrize("x,y", [(0, 2), (3, 1), (2, 2)])
    def test_min(self, x, y):
        result = verify_function_on_input(
            MinProtocol(), min_max_inputs(x, y, 6), decode_scalar, min(x, y))
        assert result.holds, result.reason

    @pytest.mark.parametrize("x,y", [(0, 2), (3, 1), (2, 2)])
    def test_max(self, x, y):
        result = verify_function_on_input(
            MaxProtocol(), min_max_inputs(x, y, 6), decode_scalar, max(x, y))
        assert result.holds, result.reason


class TestOutputInstabilityDetected:
    def test_oscillating_outputs_rejected(self):
        """A protocol whose final SCC keeps flipping outputs can never
        converge, whatever the decoded values average to."""
        blinker = DictProtocol(
            input_map={0: "a"},
            output_map={"a": 0, "b": 1},
            transitions={("a", "a"): ("b", "b"), ("b", "b"): ("a", "a"),
                         ("a", "b"): ("b", "a"), ("b", "a"): ("a", "b")},
        )
        result = verify_function_on_input(
            blinker, {0: 2}, decode_scalar, 1)
        assert not result.holds
        assert "never stabilize" in result.reason

    def test_output_preserving_swap_accepted(self):
        """State churn with frozen outputs is fine (the paper's point that
        configurations need not stop changing)."""
        swapper = DictProtocol(
            input_map={0: "a", 1: "b"},
            output_map={"a": 0, "b": 1, "c": 1},
            transitions={("b", "a"): ("c", "a"), ("c", "a"): ("b", "a")},
        )
        result = verify_function_on_input(
            swapper, {0: 2, 1: 1}, decode_scalar, 1)
        assert result.holds, result.reason
