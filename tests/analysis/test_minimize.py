"""Tests for protocol state-space minimization."""

import pytest

from repro.analysis.minimize import (
    equivalence_classes,
    minimization_report,
    minimize_protocol,
)
from repro.analysis.stability import all_inputs_of_size, verify_stable_computation
from repro.core.protocol import DictProtocol
from repro.presburger.compiler import compile_predicate
from repro.protocols.composition import and_protocol
from repro.protocols.counting import CountToK, count_to_five
from repro.protocols.remainder import RemainderProtocol


class TestEquivalenceClasses:
    def test_already_minimal_protocol(self):
        p = count_to_five()
        classes = equivalence_classes(p)
        assert len(classes) == len(p.states())

    def test_redundant_states_merged(self):
        # Two states 'b1'/'b2' are behaviourally identical sinks.
        p = DictProtocol(
            input_map={0: "a"},
            output_map={"a": 0, "b1": 1, "b2": 1},
            transitions={("a", "a"): ("b1", "b2"),
                         ("a", "b1"): ("b2", "b1"),
                         ("a", "b2"): ("b1", "b2"),
                         ("b1", "a"): ("b1", "b2"),
                         ("b2", "a"): ("b2", "b1")},
        )
        classes = equivalence_classes(p)
        merged = [c for c in classes if {"b1", "b2"} <= set(c)]
        assert merged, f"b1/b2 should merge; got {classes}"

    def test_outputs_never_merge_across(self):
        p = CountToK(3)
        for members in equivalence_classes(p):
            outputs = {p.output(s) for s in members}
            assert len(outputs) == 1


class TestMinimizeProtocol:
    def test_minimized_count_to_five_same_size(self):
        p = count_to_five()
        m = minimize_protocol(p)
        assert len(m.declared_states()) == len(p.states())

    def test_minimized_still_stably_computes(self):
        p = count_to_five()
        m = minimize_protocol(p)
        results = verify_stable_computation(
            m, lambda c: c.get(1, 0) >= 5, all_inputs_of_size([0, 1], 7))
        assert all(results)

    def test_self_product_already_minimal(self):
        # AND of a predicate with itself runs both components in lockstep:
        # only diagonal states are reachable, so nothing can merge.
        inner = RemainderProtocol({0: 0, 1: 1}, c=1, m=2)
        product = and_protocol(inner, inner)
        report = minimization_report(product)
        assert report["states_after"] == report["states_before"]

    def test_contradiction_collapses_to_one_state(self):
        # (x odd) AND (x even) is identically false: every product state
        # outputs 0 forever, so the congruence merges them all.
        odd = RemainderProtocol({0: 0, 1: 1}, c=1, m=2)
        even = RemainderProtocol({0: 0, 1: 1}, c=0, m=2)
        product = and_protocol(odd, even)
        report = minimization_report(product)
        assert report["states_before"] > 1
        assert report["states_after"] == 1
        minimized = minimize_protocol(product)
        results = verify_stable_computation(
            minimized, lambda c: False, all_inputs_of_size([0, 1], 5))
        assert all(results)

    def test_compiled_protocol_minimizes_and_verifies(self):
        p = compile_predicate("x < 2 | x > 3", extra_symbols=["pad"])
        report = minimization_report(p)
        assert report["states_after"] <= report["states_before"]
        minimized = minimize_protocol(p)
        results = verify_stable_computation(
            minimized,
            lambda c: c.get("x", 0) < 2 or c.get("x", 0) > 3,
            all_inputs_of_size(["x", "pad"], 5))
        assert all(results)

    def test_quotient_respects_io_maps(self):
        p = CountToK(2)
        m = minimize_protocol(p)
        # Same verdict structure for the alphabet.
        for symbol in p.input_alphabet:
            state = m.initial_state(symbol)
            assert m.output(state) == p.output(p.initial_state(symbol))

    def test_report_fields(self):
        report = minimization_report(count_to_five())
        assert set(report) == {"states_before", "states_after", "reduction"}
        assert report["reduction"] == pytest.approx(0.0)


class TestMinimizeWrappedProtocols:
    def test_baton_simulator_minimizes_and_still_works(self):
        """The Theorem 7 wrapper's state space minimizes without changing
        behaviour (verified exactly on a line graph)."""
        from repro.analysis.graph_reachability import (
            verify_predicate_on_population,
        )
        from repro.core.population import line_population
        from repro.protocols.graph_simulation import GraphSimulationProtocol

        wrapped = GraphSimulationProtocol(CountToK(2))
        minimized = minimize_protocol(wrapped)
        for inputs, expected in ([(1, 1, 0, 0), True], [(1, 0, 0, 0), False]):
            result = verify_predicate_on_population(
                minimized, line_population(4), inputs, expected)
            assert result.holds, result.reason
