"""Tests for the fault-injection resilience harness."""

import pytest

from repro.analysis.robustness import (
    FaultScenario,
    ResiliencePoint,
    ResilienceRow,
    format_rows,
    measure_correctness,
    resilience_curve,
    run_robustness,
    scenarios_for,
)
from repro.protocols.counting import CountToK, Epidemic
from repro.sim.faults import CrashAt, FaultPlan, TargetedCrash


class TestMeasureCorrectness:
    def test_fault_free_epidemic_is_always_correct(self):
        correct = measure_correctness(
            Epidemic, {1: 1, 0: 11}, 1, None,
            trials=5, seed=1, patience=2000, max_steps=50_000)
        assert correct == 5

    def test_targeted_holder_crash_always_breaks_count_to_k(self):
        correct = measure_correctness(
            lambda: CountToK(5), {1: 5, 0: 11}, 1,
            lambda s: FaultPlan(TargetedCrash(lambda st: 3 <= st < 5),
                                seed=s),
            trials=5, seed=1, patience=2000, max_steps=50_000)
        assert correct == 0

    def test_rejects_zero_trials(self):
        with pytest.raises(ValueError):
            measure_correctness(Epidemic, {1: 1, 0: 3}, 1, None, trials=0)

    def test_trials_are_independent(self):
        # Same seed reproduces; different seed may differ but stays valid.
        kwargs = dict(trials=4, patience=1500, max_steps=30_000)
        first = measure_correctness(
            Epidemic, {1: 1, 0: 9}, 1,
            lambda s: FaultPlan(CrashAt(5, 6), seed=s), seed=7, **kwargs)
        again = measure_correctness(
            Epidemic, {1: 1, 0: 9}, 1,
            lambda s: FaultPlan(CrashAt(5, 6), seed=s), seed=7, **kwargs)
        assert first == again
        assert 0 <= first <= 4


class TestResilienceCurve:
    def test_omission_sweep_monotone_extremes(self):
        curve = resilience_curve(
            "epidemic", {1: 1, 0: 9}, "omission-rate",
            [0.0, 0.5], trials=4, seed=3,
            patience=2000, max_steps=60_000)
        assert curve.protocol == "epidemic"
        assert curve.fault == "omission-rate"
        assert [p.intensity for p in curve.points] == [0.0, 0.5]
        # Omissions only dilate time; both intensities stay correct.
        assert all(p.rate == 1.0 for p in curve.points)
        assert "intensity" in curve.table()

    def test_batched_engine_sweeps_the_same_curve(self):
        # The E21 workload shape: a crash-at sweep through the faulted
        # batched engine.  Spec validation admits it and the endpoints
        # behave (fault-free correct, total crash fatal).
        # 18 of 20 crashed leaves the source alive with probability
        # 1/10 per trial (a crash keeps >= 2 live agents, so 18 is the
        # heaviest legal crash here).
        curve = resilience_curve(
            "epidemic", {1: 1, 0: 19}, "crash-at", [0, 18],
            at_step=0, trials=4, seed=3, patience=2000,
            max_steps=60_000, engine="batched")
        assert [p.intensity for p in curve.points] == [0.0, 18.0]
        assert curve.points[0].rate == 1.0
        assert curve.points[1].rate < 1.0

    def test_declarative_sweep_is_an_experiment(self, tmp_path):
        # The curve runs on repro.exp: persists to a store and resumes.
        from repro.exp import ResultStore

        path = tmp_path / "curve.jsonl"
        kwargs = dict(trials=3, seed=5, patience=1500, max_steps=40_000)
        first = resilience_curve("epidemic", {1: 1, 0: 7}, "crash-rate",
                                 [0.0, 0.02], store=ResultStore(path),
                                 **kwargs)
        resumed = resilience_curve("epidemic", {1: 1, 0: 7}, "crash-rate",
                                   [0.0, 0.02], store=ResultStore(path),
                                   **kwargs)
        assert [p.correct for p in first.points] == \
            [p.correct for p in resumed.points]
        assert first.points[0].rate == 1.0

    def test_rejects_non_predicate_protocol(self):
        with pytest.raises(ValueError, match="does not compute a predicate"):
            resilience_curve("quotient-3", {1: 6}, "omission-rate", [0.0],
                             trials=1)

    def test_point_rate(self):
        assert ResiliencePoint(0.5, 4, 3).rate == 0.75
        assert ResiliencePoint(0.5, 0, 0).rate == 0.0


class TestScenarios:
    def test_curated_protocols_have_suites(self):
        for name in ("epidemic", "count-to-k", "redundant-count-to-k"):
            suite = scenarios_for(name)
            assert suite[0].label == "no faults"
            assert suite[0].plan_factory is None
            assert len(suite) >= 3
            assert all(isinstance(s, FaultScenario) for s in suite)

    def test_generic_fallback_for_predicate_protocols(self):
        suite = scenarios_for("majority")
        assert [s.label for s in suite][0] == "no faults"
        assert len(suite) == 3

    def test_snake_case_names_accepted(self):
        assert [s.label for s in scenarios_for("count_to_k")] == \
            [s.label for s in scenarios_for("count-to-k")]

    def test_non_predicate_protocol_rejected(self):
        with pytest.raises(ValueError, match="does not compute a predicate"):
            scenarios_for("quotient-3")


class TestRunRobustness:
    def test_resilience_table_tells_the_story(self):
        rows = run_robustness(
            ["epidemic", "count_to_k", "redundant-count-to-k"],
            trials=4, seed=0, patience=3000, max_steps=60_000)
        by_key = {(r.protocol, r.scenario): r for r in rows}
        # Fault-free rows are perfect for all three protocols.
        for name in ("epidemic", "count-to-k", "redundant-count-to-k"):
            assert by_key[(name, "no faults")].rate == 1.0
        # Epidemic survives targeted crashes of uninfected agents.
        assert by_key[("epidemic",
                       "crash 5 uninfected @ step 10")].rate == 1.0
        # CountToK collapses when the token holder dies...
        assert by_key[("count-to-k",
                       "crash token holder (pile >= 3)")].rate == 0.0
        # ...and the redundant variant shrugs the same attack off.
        assert by_key[("redundant-count-to-k",
                       "crash largest pile (= cap)")].rate == 1.0

    def test_format_rows(self):
        rows = [ResilienceRow("epidemic", "no faults", 4, 4),
                ResilienceRow("count-to-k", "holder crash", 4, 0)]
        text = format_rows(rows)
        assert "protocol" in text and "rate" in text
        assert " 1.00" in text and " 0.00" in text
        assert len(text.splitlines()) == 3


class TestEngineDispatch:
    """`--engine` routing of the resilience harness (ISSUE-8)."""

    KWARGS = dict(trials=6, seed=11, patience=1500, max_steps=60_000)

    def _measure(self, engine):
        from repro.analysis.robustness import measure_scenario

        return measure_scenario(
            Epidemic, {1: 1, 0: 19}, 1,
            lambda s: FaultPlan(CrashAt(8, 5), seed=s),
            engine=engine, descriptor=("crash-at", 5, 8), **self.KWARGS)

    def test_known_engines_listed(self):
        from repro.analysis.robustness import ROBUSTNESS_ENGINES

        assert ROBUSTNESS_ENGINES == ("reference", "multiset", "batched",
                                      "ensemble")

    def test_batched_is_bit_identical_to_reference(self):
        # The batched fingerprint contract surfaces here as identical
        # correctness counts for the same seeds and plans.
        ref = self._measure("reference")
        fast = self._measure("batched")
        assert fast.correct == ref.correct
        assert fast.trials == ref.trials
        assert fast.engine == "batched"
        assert fast.interactions == ref.interactions

    def test_multiset_engine_reports_itself(self):
        result = self._measure("multiset")
        assert result.engine == "multiset"
        assert 0 <= result.correct <= result.trials

    def test_ensemble_engine_runs_descriptor_scenarios(self):
        result = self._measure("ensemble")
        assert result.engine == "ensemble"
        assert 0 <= result.correct <= result.trials
        assert result.interactions > 0
        assert result.seconds > 0

    def test_ensemble_falls_back_for_targeted_scenarios(self):
        # Targeted crashes inspect states — no vectorized law exists, so
        # the scalar multiset twin runs and reports itself honestly.
        from repro.analysis.robustness import measure_scenario

        result = measure_scenario(
            lambda: CountToK(5), {1: 5, 0: 11}, 1,
            lambda s: FaultPlan(TargetedCrash(lambda st: 3 <= st < 5),
                                seed=s),
            engine="ensemble", descriptor=None, **self.KWARGS)
        assert result.engine == "multiset"
        assert result.correct == 0

    def test_run_robustness_carries_engine_into_rows(self):
        rows = run_robustness(["epidemic"], engine="batched", trials=3,
                              seed=5, patience=1000, max_steps=40_000)
        assert rows
        for row in rows:
            assert row.engine in ("batched", "multiset")
            assert row.throughput >= 0.0
