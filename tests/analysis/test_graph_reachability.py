"""Exact model checking on restricted interaction graphs.

The strongest evidence for Theorem 7 in this repository: the Fig. 1 baton
simulator is verified exhaustively — every fair computation from every
input on small line/ring/star graphs converges to the correct unanimous
verdict.
"""

import pytest

from repro.analysis.graph_reachability import (
    GraphConfigurationGraph,
    verify_on_all_inputs,
    verify_predicate_on_population,
)
from repro.core.configuration import AgentConfiguration
from repro.core.population import (
    Population,
    complete_population,
    line_population,
    ring_population,
    star_population,
)
from repro.protocols.counting import CountToK, Epidemic
from repro.protocols.graph_simulation import GraphSimulationProtocol


class TestGraphConfigurationGraph:
    def test_explores_reachable_space(self):
        protocol = Epidemic()
        pop = line_population(3)
        root = AgentConfiguration([1, 0, 0])
        graph = GraphConfigurationGraph(protocol, pop, root)
        # Infection spreads left to right: (1,0,0) -> (1,1,0) -> (1,1,1).
        assert len(graph) == 3

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            GraphConfigurationGraph(
                Epidemic(), line_population(3), AgentConfiguration([1, 0]))

    def test_budget_guard(self):
        protocol = GraphSimulationProtocol(CountToK(3))
        pop = line_population(5)
        root = AgentConfiguration(
            protocol.initial_state(s) for s in [1, 1, 1, 0, 0])
        with pytest.raises(MemoryError):
            GraphConfigurationGraph(protocol, pop, root,
                                    max_configurations=10)


class TestEpidemicOnGraphs:
    @pytest.mark.parametrize("factory", [
        line_population, star_population, complete_population,
    ], ids=["line", "star", "complete"])
    def test_or_exact(self, factory):
        protocol = Epidemic()
        results = verify_on_all_inputs(
            protocol, factory(4), lambda c: c.get(1, 0) >= 1, [0, 1])
        assert len(results) == 16
        assert all(results)

    def test_disconnected_graph_fails(self):
        """On a disconnected graph the epidemic cannot reach the far
        component: stable computation fails, and the checker proves it."""
        protocol = Epidemic()
        pop = Population(4, [(0, 1), (1, 0), (2, 3), (3, 2)])
        result = verify_predicate_on_population(
            protocol, pop, [1, 0, 0, 0], True)
        assert not result.holds


class TestTheorem7Exact:
    """Fig. 1, verified exhaustively (not sampled) on n = 4 graphs."""

    @pytest.mark.parametrize("factory", [
        line_population, ring_population, star_population,
    ], ids=["line", "ring", "star"])
    def test_count_to_two_all_inputs(self, factory):
        protocol = GraphSimulationProtocol(CountToK(2))
        results = verify_on_all_inputs(
            protocol, factory(4), lambda c: c.get(1, 0) >= 2, [0, 1])
        assert len(results) == 16
        assert all(r.holds for r in results), \
            [r.reason for r in results if not r.holds]

    def test_count_to_three_line(self):
        protocol = GraphSimulationProtocol(CountToK(3))
        results = verify_on_all_inputs(
            protocol, line_population(4), lambda c: c.get(1, 0) >= 3, [0, 1])
        assert all(results)

    def test_native_protocol_fails_on_line_where_simulator_succeeds(self):
        """Control experiment: the *unwrapped* protocol is not guaranteed
        on restricted graphs... but CountToK happens to still work on a
        line (token merging only needs connectivity).  Use a protocol that
        genuinely needs arbitrary pairings: the Lemma 5 threshold relies
        on the leader meeting everyone, which a line still permits — so
        instead we verify the *wrapped* protocol agrees with the native
        one on the complete graph, closing the loop."""
        inner = CountToK(2)
        wrapped = GraphSimulationProtocol(inner)
        for inputs in ([1, 1, 0, 0], [1, 0, 0, 0]):
            expected = sum(inputs) >= 2
            native = verify_predicate_on_population(
                inner, complete_population(4), inputs, expected)
            simulated = verify_predicate_on_population(
                wrapped, complete_population(4), inputs, expected)
            assert native.holds and simulated.holds
