"""Tests for Cooper quantifier elimination (Theorem 4's normal form)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.presburger import formulas as F
from repro.presburger.formulas import Exists, evaluate
from repro.presburger.qe import (
    decide,
    eliminate_exists,
    eliminate_quantifiers,
    negate_atom,
    simplify,
    to_nnf,
)
from repro.presburger.terms import LinearTerm, var

x, y, z = var("x"), var("y"), var("z")


# -- Random quantifier-free formula generator ------------------------------------

term_st = st.builds(
    LinearTerm,
    st.dictionaries(st.sampled_from(["x", "y"]), st.integers(-3, 3), max_size=2),
    st.integers(-4, 4),
)

atom_st = st.one_of(
    st.builds(F.Lt, term_st),
    st.builds(F.Eq, term_st),
    st.builds(lambda m, t: F.Dvd(m, t), st.integers(2, 4), term_st),
)


def qf_formulas(depth: int = 2):
    return st.recursive(
        atom_st,
        lambda children: st.one_of(
            st.builds(lambda a, b: F.And((a, b)), children, children),
            st.builds(lambda a, b: F.Or((a, b)), children, children),
            st.builds(F.Not, children),
        ),
        max_leaves=6,
    )


class TestSimplify:
    def test_constant_folding(self):
        assert simplify(F.lt(1, 2)) == F.TRUE
        assert simplify(F.lt(2, 1)) == F.FALSE
        assert simplify(F.eq(3, 3)) == F.TRUE
        assert simplify(F.Dvd(3, LinearTerm.const(6))) == F.TRUE
        assert simplify(F.Dvd(3, LinearTerm.const(7))) == F.FALSE

    def test_connective_folding(self):
        f = F.And((F.TRUE, F.lt(x, 1)))
        assert simplify(f) == F.Lt(x - 1)
        assert simplify(F.And((F.FALSE, F.lt(x, 1)))) == F.FALSE
        assert simplify(F.Or((F.TRUE, F.lt(x, 1)))) == F.TRUE

    def test_flattening_and_dedup(self):
        f = F.And((F.lt(x, 1), F.And((F.lt(x, 1), F.lt(y, 2)))))
        result = simplify(f)
        assert isinstance(result, F.And)
        assert len(result.args) == 2

    def test_double_negation(self):
        assert simplify(F.Not(F.Not(F.lt(x, 1)))) == F.Lt(x - 1)

    def test_dvd_coefficient_reduction(self):
        f = F.Dvd(3, 7 * x + 9)
        result = simplify(f)
        assert result == F.Dvd(3, 1 * x)

    def test_vacuous_quantifier_dropped(self):
        f = F.exists("z", F.lt(x, 1))
        assert simplify(f) == F.Lt(x - 1)

    @given(qf_formulas(), st.fixed_dictionaries(
        {"x": st.integers(-8, 8), "y": st.integers(-8, 8)}))
    def test_simplify_preserves_semantics(self, formula, env):
        assert evaluate(simplify(formula), env) == evaluate(formula, env)


class TestNegateAtom:
    @given(atom_st, st.fixed_dictionaries(
        {"x": st.integers(-8, 8), "y": st.integers(-8, 8)}))
    def test_negation_semantics(self, atom, env):
        assert evaluate(negate_atom(atom), env) == (not evaluate(atom, env))


class TestToNnf:
    @given(qf_formulas(), st.fixed_dictionaries(
        {"x": st.integers(-8, 8), "y": st.integers(-8, 8)}))
    def test_nnf_preserves_semantics(self, formula, env):
        nnf = to_nnf(formula, split_eq=True)
        assert evaluate(nnf, env) == evaluate(formula, env)

    @given(qf_formulas())
    def test_nnf_has_no_not_or_eq(self, formula):
        nnf = to_nnf(formula, split_eq=True)

        def check(node):
            assert not isinstance(node, (F.Not, F.Eq))
            if isinstance(node, (F.And, F.Or)):
                for arg in node.args:
                    check(arg)

        check(nnf)


class TestEliminateExists:
    @settings(max_examples=120)
    @given(qf_formulas(), st.integers(-6, 6))
    def test_matches_bruteforce(self, body, y_value):
        eliminated = eliminate_exists("x", body)
        assert F.is_quantifier_free(eliminated)
        assert "x" not in eliminated.free_variables()
        want = evaluate(Exists("x", body), {"y": y_value})
        got = evaluate(eliminated, {"y": y_value})
        assert got == want

    def test_unbounded_below_formula(self):
        # E x. x < y : always true over Z.
        assert evaluate(eliminate_exists("x", F.lt(x, y)), {"y": -100})

    def test_no_occurrence_is_identity(self):
        body = F.lt(y, 3)
        assert eliminate_exists("x", body) == simplify(body)


class TestEliminateQuantifiers:
    def test_even_predicate(self):
        f = F.exists("k", F.eq(2 * var("k"), y))
        qf = eliminate_quantifiers(f)
        assert qf == F.Dvd(2, y) or evaluate(qf, {"y": 4})
        for v in range(-6, 7):
            assert evaluate(qf, {"y": v}) == (v % 2 == 0)

    def test_nested_quantifiers_xi_m(self):
        """The paper's xi_m(x, y) for m = 3 eliminates to x ≡ y (mod 3)."""
        f = F.exists(["z", "q"],
                     F.conj(F.eq(x + z, y), F.eq(3 * var("q"), z)))
        qf = eliminate_quantifiers(f)
        assert F.is_quantifier_free(qf)
        for xv in range(-4, 5):
            for yv in range(-4, 5):
                assert evaluate(qf, {"x": xv, "y": yv}) == \
                    ((yv - xv) % 3 == 0)

    def test_forall(self):
        # A z. z >= x -> z >= y  <=>  y <= x.
        f = F.forall("z", F.Or((F.lt(z, x), F.ge(z, y))))
        qf = eliminate_quantifiers(f)
        for xv in range(-3, 4):
            for yv in range(-3, 4):
                assert evaluate(qf, {"x": xv, "y": yv}) == (yv <= xv)

    def test_alternating_quantifiers(self):
        # A x. E k. x = 2k | x = 2k + 1 : true.
        f = F.forall("x", F.exists(
            "k", F.Or((F.eq(x, 2 * var("k")), F.eq(x, 2 * var("k") + 1)))))
        assert eliminate_quantifiers(f) == F.TRUE

    def test_unsatisfiable_closed_formula(self):
        # E x. x < 0 & x > 0.
        f = F.exists("x", F.conj(F.lt(x, 0), F.gt(x, 0)))
        assert eliminate_quantifiers(f) == F.FALSE

    def test_divisibility_combination(self):
        # E x. (2 | x) & (3 | x) & x = y : i.e. 6 | y.
        f = F.exists("x", F.conj(F.Dvd(2, x), F.Dvd(3, x), F.eq(x, y)))
        qf = eliminate_quantifiers(f)
        for v in range(-12, 13):
            assert evaluate(qf, {"y": v}) == (v % 6 == 0)


class TestDecide:
    def test_closed_true(self):
        assert decide(F.exists("x", F.eq(x, 5)))

    def test_with_environment(self):
        f = F.exists("k", F.eq(x, 2 * var("k")))
        assert decide(f, {"x": 10})
        assert not decide(f, {"x": 11})


class TestEliminationOrderIndependence:
    """For independent quantifiers, elimination order cannot change
    semantics: QE of E x E y φ agrees with QE of E y E x φ."""

    @settings(max_examples=40)
    @given(qf_formulas())
    def test_exists_commute(self, body):
        both_orders = []
        for outer, inner in (("x", "y"), ("y", "x")):
            step1 = eliminate_exists(inner, body)
            step2 = eliminate_exists(outer, step1)
            both_orders.append(step2)
        a, b = both_orders
        assert F.is_quantifier_free(a) and F.is_quantifier_free(b)
        assert not a.free_variables() and not b.free_variables()
        assert evaluate(a, {}) == evaluate(b, {})

    @settings(max_examples=40)
    @given(qf_formulas())
    def test_forall_exists_duality(self, body):
        """A x φ == !E x !φ, computed through full elimination."""
        from repro.presburger.formulas import Forall, Not

        direct = eliminate_quantifiers(Forall("x", body))
        dual = eliminate_quantifiers(Not(Exists("x", Not(body))))
        for y_value in (-3, 0, 4):
            env = {"y": y_value}
            env_a = {v: env[v] for v in direct.free_variables()}
            env_b = {v: env[v] for v in dual.free_variables()}
            assert evaluate(direct, env_a) == evaluate(dual, env_b)
