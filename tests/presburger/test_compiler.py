"""Tests for the Theorem 5 / Corollary 3 formula-to-protocol compiler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stability import all_inputs_of_size, verify_stable_computation
from repro.presburger.compiler import (
    CompilationError,
    CompiledPredicateProtocol,
    ConstantProtocol,
    compile_integer_predicate,
    compile_predicate,
)
from repro.presburger.parser import parse
from repro.sim.convergence import run_until_quiescent
from repro.sim.engine import simulate_counts


class TestConstantProtocol:
    def test_outputs_fixed_bit(self):
        p = ConstantProtocol(True, ["a"])
        s = p.initial_state("a")
        assert p.output(s) == 1
        assert p.delta(s, s) == (s, s)

    def test_unknown_symbol(self):
        with pytest.raises(ValueError):
            ConstantProtocol(False, ["a"]).initial_state("z")

    def test_empty_alphabet_rejected(self):
        with pytest.raises(ValueError):
            ConstantProtocol(True, [])


class TestCompilationBasics:
    def test_accepts_text_and_ast(self):
        assert isinstance(compile_predicate("x < 3"), CompiledPredicateProtocol)
        assert isinstance(compile_predicate(parse("x < 3")),
                          CompiledPredicateProtocol)

    def test_free_variables_become_symbols(self):
        p = compile_predicate("x + y < 4")
        assert p.input_alphabet == {"x", "y"}

    def test_extra_symbols(self):
        p = compile_predicate("x < 3", extra_symbols=["pad"])
        assert p.input_alphabet == {"x", "pad"}

    def test_extra_symbol_collision(self):
        with pytest.raises(CompilationError):
            compile_predicate("x < 3", extra_symbols=["x"])

    def test_closed_formula_needs_symbols(self):
        with pytest.raises(CompilationError):
            compile_predicate("E x. x = 5")

    def test_closed_formula_with_pad(self):
        p = compile_predicate("E x. x = 5", extra_symbols=["_"])
        assert isinstance(p, ConstantProtocol)
        assert p.bit == 1

    def test_unsatisfiable_compiles_to_constant_false(self):
        p = compile_predicate("E x. x < 0 & x > 0", extra_symbols=["_"])
        assert isinstance(p, ConstantProtocol)
        assert p.bit == 0

    def test_ground_truth_helper(self):
        p = compile_predicate("2*x < y + 1")
        assert p.ground_truth({"x": 1, "y": 2}) is True
        assert p.ground_truth({"x": 2, "y": 2}) is False

    def test_ground_truth_rejects_unknown_symbol(self):
        p = compile_predicate("x < 3")
        with pytest.raises(ValueError):
            p.ground_truth({"zz": 1})


class TestExactSemantics:
    """Model-check compiled protocols exhaustively on small populations."""

    @pytest.mark.parametrize("text", [
        "x < 2",
        "x >= 3",
        "x = 2",
        "x != 2",
        "x = 1 mod 2",
        "x = 0 mod 3",
        "x < 2 | x > 3",
        "x >= 1 & x = 0 mod 2",
    ])
    def test_single_variable(self, text):
        p = compile_predicate(text, extra_symbols=["pad"])
        results = verify_stable_computation(
            p, lambda c: p.ground_truth(c), all_inputs_of_size(["x", "pad"], 5))
        assert all(results)

    @pytest.mark.parametrize("text", [
        "x < y",
        "x = y",
        "2*x + 1 >= y",
        "x = y mod 2",
        "x + y = 0 mod 3",
    ])
    def test_two_variables(self, text):
        p = compile_predicate(text)
        results = verify_stable_computation(
            p, lambda c: p.ground_truth(c), all_inputs_of_size(["x", "y"], 4))
        assert all(results)

    def test_quantified_formula(self):
        # "x is even", phrased with a quantifier.
        p = compile_predicate("E k. x = 2*k & k >= 0", extra_symbols=["pad"])
        results = verify_stable_computation(
            p, lambda c: c.get("x", 0) % 2 == 0,
            all_inputs_of_size(["x", "pad"], 5))
        assert all(results)


class TestSimulatedSemantics:
    @settings(max_examples=15)
    @given(st.integers(0, 10), st.integers(0, 10), st.integers(0, 10_000))
    def test_flock_of_birds(self, hot, cold, seed):
        if hot + cold < 2:
            hot, cold = 1, 1
        p = compile_predicate("20*e >= e + h")
        sim = simulate_counts(p, {"e": hot, "h": cold}, seed=seed)
        result = run_until_quiescent(sim, patience=15_000, max_steps=1_500_000)
        assert result.output == (1 if 20 * hot >= hot + cold else 0)

    def test_three_atom_formula(self, seed):
        text = "x = 1 mod 2 & x + 2 > y & y >= 1"
        p = compile_predicate(text)
        for (xs, ys) in [(3, 2), (3, 6), (4, 2), (3, 0)]:
            sim = simulate_counts(p, {"x": xs, "y": ys}, seed=seed)
            result = run_until_quiescent(sim, patience=15_000, max_steps=1_500_000)
            want = 1 if (xs % 2 == 1 and xs + 2 > ys and ys >= 1) else 0
            assert result.output == want, (xs, ys)


class TestIntegerConvention:
    """Corollary 3: vector-alphabet inputs."""

    VECTORS = {
        "zero": (0, 0), "+x": (1, 0), "-x": (-1, 0),
        "+y": (0, 1), "-y": (0, -1),
    }

    def test_alphabet(self):
        p = compile_integer_predicate("x = 2*y mod 3", self.VECTORS, ["x", "y"])
        assert p.input_alphabet == set(self.VECTORS)

    def test_variable_values_decoding(self):
        p = compile_integer_predicate("x < y", self.VECTORS, ["x", "y"])
        values = p.variable_values({"+x": 3, "-x": 1, "+y": 2, "zero": 4})
        assert values == {"x": 2, "y": 2}

    def test_exact_congruence(self):
        p = compile_integer_predicate("x = 2*y mod 3", self.VECTORS, ["x", "y"])

        def truth(counts):
            values = p.variable_values(counts)
            return (values["x"] - 2 * values["y"]) % 3 == 0

        results = verify_stable_computation(
            p, truth, all_inputs_of_size(list(self.VECTORS), 3))
        assert all(results)

    def test_negative_values_simulated(self, seed):
        p = compile_integer_predicate("x < 0", self.VECTORS, ["x", "y"])
        sim = simulate_counts(p, {"-x": 3, "+x": 1, "zero": 4}, seed=seed)
        result = run_until_quiescent(sim, patience=10_000, max_steps=800_000)
        assert result.output == 1

    def test_vector_dimension_checked(self):
        with pytest.raises(CompilationError):
            compile_integer_predicate("x < 0", {"a": (1, 2)}, ["x"])

    def test_free_variable_coverage_checked(self):
        with pytest.raises(CompilationError):
            compile_integer_predicate("x + z < 0", {"a": (1,)}, ["x"])


class TestCorollary4Pipeline:
    """Semilinear set -> formula -> protocol (Corollary 4)."""

    def test_semilinear_language_accepted(self):
        from repro.presburger.semilinear import LinearSet, SemilinearSet

        # Parikh image {(a, b) : a = b + 2k, k >= 0} over alphabet {a, b}:
        # words with at least as many a's as b's and a - b even.
        s = SemilinearSet([LinearSet((0, 0), [(1, 1), (2, 0)])])
        formula = s.to_formula(["a", "b"])
        p = compile_predicate(formula)

        def truth(counts):
            a, b = counts.get("a", 0), counts.get("b", 0)
            return a >= b and (a - b) % 2 == 0

        results = verify_stable_computation(
            p, truth, all_inputs_of_size(["a", "b"], 4))
        assert all(results)
