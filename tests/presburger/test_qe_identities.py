"""Quantifier elimination against textbook number-theoretic identities.

Each test encodes a known truth of integer arithmetic as a Presburger
formula and checks that Cooper elimination yields exactly the expected
(quantifier-free) content.  These are end-to-end correctness anchors,
complementing the randomized property tests.
"""

import pytest

from repro.presburger import formulas as F
from repro.presburger.formulas import evaluate
from repro.presburger.parser import parse
from repro.presburger.qe import decide, eliminate_quantifiers
from repro.presburger.terms import var

a, b, x, y = var("a"), var("b"), var("x"), var("y")


class TestChineseRemainder:
    def test_crt_3_5_always_solvable(self):
        """gcd(3,5)=1: E x. x ≡ a (3) & x ≡ b (5) holds for all a, b."""
        formula = F.exists("x", F.conj(F.modeq(x, a, 3), F.modeq(x, b, 5)))
        qf = eliminate_quantifiers(formula)
        for av in range(-4, 5):
            for bv in range(-4, 5):
                assert evaluate(qf, {"a": av, "b": bv})

    def test_non_coprime_moduli_constraint(self):
        """E x. x ≡ a (2) & x ≡ b (4) solvable iff a ≡ b (mod 2)."""
        formula = F.exists("x", F.conj(F.modeq(x, a, 2), F.modeq(x, b, 4)))
        qf = eliminate_quantifiers(formula)
        for av in range(-4, 5):
            for bv in range(-4, 5):
                assert evaluate(qf, {"a": av, "b": bv}) == ((av - bv) % 2 == 0)


class TestBezoutFlavoured:
    def test_2x_plus_3y_hits_everything(self):
        """2x + 3y ranges over all of Z (gcd = 1)."""
        formula = F.exists(["x", "y"], F.eq(2 * x + 3 * y, a))
        qf = eliminate_quantifiers(formula)
        for av in range(-8, 9):
            assert evaluate(qf, {"a": av})

    def test_4x_plus_6y_hits_even(self):
        """4x + 6y ranges exactly over multiples of gcd(4,6) = 2."""
        formula = F.exists(["x", "y"], F.eq(4 * x + 6 * y, a))
        qf = eliminate_quantifiers(formula)
        for av in range(-12, 13):
            assert evaluate(qf, {"a": av}) == (av % 2 == 0)


class TestOrderingFacts:
    def test_no_integer_strictly_between_consecutive(self):
        """A x. !(a < x & x < a + 1): integers are discrete."""
        formula = F.forall("x", F.Not(F.conj(F.lt(a, x), F.lt(x, a + 1))))
        assert eliminate_quantifiers(formula) == F.TRUE

    def test_dense_between_with_gap_two(self):
        """E x. a < x & x < a + 2 always (namely x = a + 1)."""
        formula = F.exists("x", F.conj(F.lt(a, x), F.lt(x, a + 2)))
        assert eliminate_quantifiers(formula) == F.TRUE

    def test_no_maximum_integer(self):
        formula = F.exists("x", F.gt(x, a))
        assert eliminate_quantifiers(formula) == F.TRUE

    def test_trichotomy(self):
        formula = F.forall("x", F.disj(F.lt(x, a), F.eq(x, a), F.gt(x, a)))
        assert eliminate_quantifiers(formula) == F.TRUE


class TestDivisionAlgorithm:
    def test_unique_remainder_exists(self):
        """A a >= 0 ... E q r. a = 3q + r & 0 <= r < 3 — phrased openly."""
        formula = parse("E q r. a = 3*q + r & 0 <= r & r < 3")
        qf = eliminate_quantifiers(formula)
        for av in range(-9, 10):
            assert evaluate(qf, {"a": av})

    def test_specific_remainder_characterizes_congruence(self):
        formula = parse("E q. a = 3*q + 2")
        qf = eliminate_quantifiers(formula)
        for av in range(-9, 10):
            assert evaluate(qf, {"a": av}) == (av % 3 == 2)


class TestEvenOddDecomposition:
    def test_every_integer_even_or_odd(self):
        formula = F.forall("x", F.disj(
            F.exists("k", F.eq(x, 2 * var("k"))),
            F.exists("k", F.eq(x, 2 * var("k") + 1))))
        assert eliminate_quantifiers(formula) == F.TRUE

    def test_no_integer_both(self):
        formula = F.exists("x", F.conj(
            F.modeq(x, 0, 2), F.modeq(x, 1, 2)))
        assert eliminate_quantifiers(formula) == F.FALSE


class TestDecideConvenience:
    @pytest.mark.parametrize("text,env,expected", [
        ("E x. 5*x = a", {"a": 15}, True),
        ("E x. 5*x = a", {"a": 17}, False),
        ("A x. E y. y = x + 1", {}, True),
        ("E x. A y. y >= x", {}, False),     # no least integer
    ])
    def test_closed_and_open(self, text, env, expected):
        assert decide(parse(text), env) == expected
