"""Property-based tests of the compiler's logic layer.

The compiled protocol's ``ground_truth`` and its Boolean ``combine``
function must agree with direct formula evaluation for arbitrary
quantifier-free formulas and inputs — a pure-logic check that needs no
simulation, so it can run on hundreds of random cases.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.presburger import formulas as F
from repro.presburger.compiler import (
    CompiledPredicateProtocol,
    ConstantProtocol,
    compile_predicate,
)
from repro.presburger.formulas import evaluate
from repro.presburger.terms import LinearTerm

term_st = st.builds(
    LinearTerm,
    st.dictionaries(st.sampled_from(["x", "y"]), st.integers(-3, 3),
                    min_size=1, max_size=2),
    st.integers(-4, 4),
)

atom_st = st.one_of(
    st.builds(F.Lt, term_st),
    st.builds(F.Eq, term_st),
    st.builds(lambda m, t: F.Dvd(m, t), st.integers(2, 4), term_st),
)

formula_st = st.recursive(
    atom_st,
    lambda children: st.one_of(
        st.builds(lambda a, b: F.And((a, b)), children, children),
        st.builds(lambda a, b: F.Or((a, b)), children, children),
        st.builds(F.Not, children),
    ),
    max_leaves=5,
)

counts_st = st.fixed_dictionaries({"x": st.integers(0, 12),
                                   "y": st.integers(0, 12)})


@settings(max_examples=150)
@given(formula_st, counts_st)
def test_ground_truth_matches_formula_semantics(formula, counts):
    protocol = compile_predicate(formula, extra_symbols=(
        () if formula.free_variables() == {"x", "y"}
        else tuple({"x", "y"} - formula.free_variables())))
    env = {"x": counts["x"], "y": counts["y"]}
    want = evaluate(formula, {v: env[v] for v in formula.free_variables()})
    assert protocol.ground_truth(counts) == want


@settings(max_examples=150)
@given(formula_st, counts_st)
def test_combine_consistent_with_atom_truths(formula, counts):
    """Feeding the exact atom truth values through the compiled combine
    function reproduces the formula's verdict (Lemma 3's correctness as a
    logic identity)."""
    protocol = compile_predicate(formula, extra_symbols=(
        () if formula.free_variables() == {"x", "y"}
        else tuple({"x", "y"} - formula.free_variables())))
    if isinstance(protocol, ConstantProtocol):
        want = evaluate(formula,
                        {v: counts[v] for v in formula.free_variables()})
        assert bool(protocol.bit) == want
        return
    assert isinstance(protocol, CompiledPredicateProtocol)
    env = protocol.variable_values(counts)
    bits = [evaluate(atom, env) for atom in protocol.atoms]
    want = evaluate(formula, {v: env[v] for v in formula.free_variables()})
    assert protocol.combine(*bits) == want


@settings(max_examples=100)
@given(formula_st)
def test_atom_protocols_one_per_distinct_atom(formula):
    protocol = compile_predicate(formula, extra_symbols=(
        () if formula.free_variables() == {"x", "y"}
        else tuple({"x", "y"} - formula.free_variables())))
    if isinstance(protocol, ConstantProtocol):
        return
    assert len(protocol.atoms) == len(set(protocol.atoms))
    assert len(protocol.components) == len(protocol.atoms)
