"""Tests for the formula parser."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.presburger.formulas import evaluate
from repro.presburger.parser import ParseError, parse
from repro.presburger.qe import decide


class TestTerms:
    def test_coefficients(self):
        f = parse("2*x + 3 < y")
        assert evaluate(f, {"x": 0, "y": 4})
        assert not evaluate(f, {"x": 1, "y": 4})

    def test_implicit_multiplication(self):
        f = parse("2x < 5")
        assert evaluate(f, {"x": 2})
        assert not evaluate(f, {"x": 3})

    def test_unary_minus(self):
        f = parse("-x < 0")
        assert evaluate(f, {"x": 1})
        assert not evaluate(f, {"x": -1})

    def test_parenthesized_terms(self):
        f = parse("2*(x + 1) = y")
        assert evaluate(f, {"x": 2, "y": 6})

    def test_subtraction_chain(self):
        f = parse("x - y - 1 = 0")
        assert evaluate(f, {"x": 5, "y": 4})


class TestComparisons:
    @pytest.mark.parametrize("text,env,expected", [
        ("x < 3", {"x": 2}, True),
        ("x <= 3", {"x": 3}, True),
        ("x > 3", {"x": 3}, False),
        ("x >= 3", {"x": 3}, True),
        ("x = 3", {"x": 3}, True),
        ("x == 3", {"x": 3}, True),
        ("x != 3", {"x": 3}, False),
    ])
    def test_operators(self, text, env, expected):
        assert evaluate(parse(text), env) == expected

    def test_congruence(self):
        f = parse("x = 2 mod 5")
        assert evaluate(f, {"x": 12})
        assert not evaluate(f, {"x": 13})

    def test_negated_congruence(self):
        f = parse("x != 0 mod 2")
        assert evaluate(f, {"x": 3})
        assert not evaluate(f, {"x": 4})

    def test_mod_with_inequality_rejected(self):
        with pytest.raises(ParseError):
            parse("x < 2 mod 5")


class TestConnectives:
    def test_precedence_and_over_or(self):
        f = parse("x = 1 | x = 2 & x = 3")  # or(x=1, and(x=2, x=3))
        assert evaluate(f, {"x": 1})
        assert not evaluate(f, {"x": 2})

    def test_not(self):
        assert evaluate(parse("!(x < 0)"), {"x": 3})

    def test_implication(self):
        f = parse("x > 0 -> x > -5")
        for v in (-10, 0, 3):
            assert evaluate(f, {"x": v})

    def test_iff(self):
        f = parse("x > 0 <-> 0 < x")
        for v in (-2, 0, 2):
            assert evaluate(f, {"x": v})

    def test_boolean_constants(self):
        assert evaluate(parse("true"), {})
        assert not evaluate(parse("false"), {})
        assert evaluate(parse("false -> x = 99"), {"x": 0})


class TestQuantifiers:
    def test_exists(self):
        f = parse("E k. x = 2*k")
        assert evaluate(f, {"x": 8})
        assert not evaluate(f, {"x": 9})

    def test_forall(self):
        f = parse("A z. z < x | z >= x")
        assert evaluate(f, {"x": 0})

    def test_multi_variable_quantifier(self):
        f = parse("E q r. x = 3*q + r & 0 <= r & r < 3 & r = 1")
        assert decide(f, {"x": 7})
        assert not decide(f, {"x": 6})

    def test_keyword_forms(self):
        f = parse("exists k. x = 2*k")
        assert evaluate(f, {"x": 4})
        g = parse("forall z. z = z")
        assert evaluate(g, {})

    def test_reserved_variable_rejected(self):
        with pytest.raises(ParseError):
            parse("E mod. mod < 3")

    def test_empty_binder_rejected(self):
        with pytest.raises(ParseError):
            parse("E . x < 3")


class TestErrors:
    @pytest.mark.parametrize("text", [
        "x <", "x ! y", "(x < 1", "x < 1)", "< 3", "x @ 3", "E x x < 1",
    ])
    def test_malformed(self, text):
        with pytest.raises(ParseError):
            parse(text)

    def test_trailing_junk(self):
        with pytest.raises(ParseError):
            parse("x < 1 zzz zzz")


class TestAgainstBuilders:
    @given(st.integers(-20, 20), st.integers(-20, 20))
    def test_flock_formula(self, h, e):
        f = parse("20*e >= e + h")
        want = 20 * e >= e + h
        assert evaluate(f, {"h": h, "e": e}) == want

    @given(st.integers(-20, 20))
    def test_paper_xi_m(self, x_value):
        """The paper's xi_m definition, literally transcribed."""
        f = parse("E z. E q. (x + z = y) & (q + q + q = z)")
        for y_value in range(-3, 4):
            assert decide(f, {"x": x_value, "y": y_value}) == \
                ((y_value - x_value) % 3 == 0)
