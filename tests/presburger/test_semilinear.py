"""Tests for linear/semilinear sets (Theorem 3 / Corollary 4 substrate)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.presburger.formulas import evaluate
from repro.presburger.qe import eliminate_quantifiers
from repro.presburger.semilinear import LinearSet, SemilinearSet


class TestLinearSet:
    def test_base_only(self):
        s = LinearSet((2, 3))
        assert (2, 3) in s
        assert (2, 4) not in s

    def test_single_period(self):
        evens = LinearSet((0,), [(2,)])
        assert (0,) in evens
        assert (8,) in evens
        assert (7,) not in evens

    def test_two_periods(self):
        # {(a + b, b)} for a, b >= 0: first component >= second.
        s = LinearSet((0, 0), [(1, 0), (1, 1)])
        assert (3, 2) in s
        assert (2, 2) in s
        assert (1, 2) not in s

    def test_zero_periods_dropped(self):
        s = LinearSet((1,), [(0,)])
        assert s.periods == ()

    def test_duplicate_periods_dropped(self):
        s = LinearSet((0,), [(2,), (2,)])
        assert s.periods == ((2,),)

    def test_negative_base_rejected(self):
        with pytest.raises(ValueError):
            LinearSet((-1,))

    def test_negative_period_rejected(self):
        with pytest.raises(ValueError):
            LinearSet((0,), [(-1,)])

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            LinearSet((0, 0), [(1,)])
        with pytest.raises(ValueError):
            LinearSet((0,)).contains((1, 2))

    def test_sample_membership(self):
        s = LinearSet((1, 0), [(2, 1), (0, 3)])
        v = s.sample([3, 2])
        assert v == (1 + 6, 3 + 6)
        assert v in s

    @settings(max_examples=40)
    @given(st.lists(st.integers(0, 4), min_size=2, max_size=2),
           st.lists(st.lists(st.integers(0, 3), min_size=2, max_size=2),
                    min_size=1, max_size=3),
           st.lists(st.integers(0, 4), min_size=1, max_size=3))
    def test_samples_always_members(self, base, periods, coefficients):
        s = LinearSet(base, periods)
        coefficients = (coefficients + [0] * len(s.periods))[:len(s.periods)]
        assert s.sample(coefficients) in s


class TestLinearSetFormula:
    def test_formula_matches_membership(self):
        s = LinearSet((1, 0), [(2, 1)])
        formula = eliminate_quantifiers(s.to_formula(["a", "b"]))
        for a in range(0, 10):
            for b in range(0, 5):
                assert evaluate(formula, {"a": a, "b": b}) == ((a, b) in s)

    def test_base_only_formula(self):
        s = LinearSet((3,))
        formula = s.to_formula(["n"])
        for n in range(8):
            assert evaluate(formula, {"n": n}) == (n == 3)

    def test_variable_count_mismatch(self):
        with pytest.raises(ValueError):
            LinearSet((0, 0)).to_formula(["only_one"])


class TestSemilinearSet:
    def test_union_semantics(self):
        evens = LinearSet((0,), [(2,)])
        threes = LinearSet((3,), [(3,)])
        s = SemilinearSet([evens, threes])
        assert (4,) in s
        assert (9,) in s
        assert (1,) not in s

    def test_union_method(self):
        s = SemilinearSet([LinearSet((0,), [(2,)])])
        s2 = s.union(LinearSet((1,), [(2,)]))
        assert all((v,) in s2 for v in range(6))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SemilinearSet([])

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            SemilinearSet([LinearSet((0,)), LinearSet((0, 0))])

    def test_formula_matches_membership(self):
        s = SemilinearSet([
            LinearSet((0,), [(2,)]),   # even
            LinearSet((1,), [(4,)]),   # 1 mod 4
        ])
        formula = eliminate_quantifiers(s.to_formula(["n"]))
        for n in range(20):
            assert evaluate(formula, {"n": n}) == ((n,) in s)
