"""Tests for linear terms."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.presburger.terms import LinearTerm, var

envs = st.fixed_dictionaries({"x": st.integers(-50, 50),
                              "y": st.integers(-50, 50)})

terms = st.builds(
    LinearTerm,
    st.dictionaries(st.sampled_from(["x", "y"]), st.integers(-5, 5), max_size=2),
    st.integers(-10, 10),
)


class TestConstruction:
    def test_zero_coefficients_dropped(self):
        t = LinearTerm({"x": 0, "y": 2}, 1)
        assert t.variables() == {"y"}

    def test_of_coercions(self):
        assert LinearTerm.of(5) == LinearTerm.const(5)
        assert LinearTerm.of("x") == var("x")
        t = var("x") + 1
        assert LinearTerm.of(t) is t

    def test_of_rejects_bool(self):
        with pytest.raises(TypeError):
            LinearTerm.of(True)

    def test_of_rejects_junk(self):
        with pytest.raises(TypeError):
            LinearTerm.of(1.5)


class TestAlgebra:
    def test_addition(self):
        t = var("x") + var("x") + 3
        assert t.coefficient("x") == 2
        assert t.constant == 3

    def test_subtraction_cancels(self):
        t = (var("x") + 1) - (var("x") - 1)
        assert t.is_constant()
        assert t.constant == 2

    def test_scalar_multiplication(self):
        t = 3 * (var("x") - 2)
        assert t.coefficient("x") == 3
        assert t.constant == -6

    def test_non_integer_scalar_rejected(self):
        with pytest.raises(TypeError):
            var("x") * 1.5  # noqa: B018

    @given(terms, terms, envs)
    def test_add_homomorphism(self, t1, t2, env):
        assert (t1 + t2).evaluate(env) == t1.evaluate(env) + t2.evaluate(env)

    @given(terms, envs)
    def test_negation(self, t, env):
        assert (-t).evaluate(env) == -t.evaluate(env)

    @given(terms, st.integers(-6, 6), envs)
    def test_scaling(self, t, k, env):
        assert (k * t).evaluate(env) == k * t.evaluate(env)


class TestSubstitution:
    def test_substitute_variable(self):
        t = 2 * var("x") + var("y")
        result = t.substitute("x", var("y") + 1)
        assert result.coefficient("y") == 3
        assert result.constant == 2
        assert "x" not in result.variables()

    def test_substitute_absent_is_identity(self):
        t = var("y") + 1
        assert t.substitute("x", 100) == t

    @given(terms, st.integers(-10, 10), envs)
    def test_substitution_semantics(self, t, value, env):
        substituted = t.substitute("x", value)
        full_env = dict(env)
        full_env["x"] = value
        assert substituted.evaluate(env) == t.evaluate(full_env)

    def test_drop(self):
        t = var("x") + var("y") + 5
        dropped = t.drop("x")
        assert dropped == var("y") + 5


class TestEvaluation:
    def test_missing_variable(self):
        with pytest.raises(KeyError):
            var("x").evaluate({})

    def test_constant_term(self):
        assert LinearTerm.const(7).evaluate({}) == 7


class TestPlumbing:
    def test_equality_and_hash(self):
        a = var("x") + 1
        b = 1 + var("x")
        assert a == b
        assert hash(a) == hash(b)

    def test_repr_readable(self):
        assert repr(2 * var("x") - var("y") + 1) == "2*x - y + 1"
        assert repr(LinearTerm.const(0)) == "0"
