"""Tests for Presburger formula syntax and evaluation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.presburger import formulas as F
from repro.presburger.formulas import EvaluationError, evaluate
from repro.presburger.terms import LinearTerm, var

x, y = var("x"), var("y")


class TestBuilders:
    def test_lt(self):
        assert evaluate(F.lt(x, 3), {"x": 2})
        assert not evaluate(F.lt(x, 3), {"x": 3})

    def test_le(self):
        assert evaluate(F.le(x, 3), {"x": 3})
        assert not evaluate(F.le(x, 3), {"x": 4})

    def test_gt_ge(self):
        assert evaluate(F.gt(x, 3), {"x": 4})
        assert evaluate(F.ge(x, 3), {"x": 3})

    def test_eq_ne(self):
        assert evaluate(F.eq(x + 1, 4), {"x": 3})
        assert evaluate(F.ne(x, 4), {"x": 3})

    def test_modeq(self):
        f = F.modeq(x, 2, 5)
        assert evaluate(f, {"x": 7})
        assert not evaluate(f, {"x": 8})

    def test_dvd_modulus_check(self):
        with pytest.raises(ValueError):
            F.Dvd(1, x)

    def test_connective_sugar(self):
        f = F.lt(x, 3) & F.gt(x, 0) | ~F.eq(x, 10)
        assert evaluate(f, {"x": 10}) is False or True  # just type-checks
        assert evaluate(F.lt(x, 3) & F.gt(x, 0), {"x": 1})
        assert not evaluate(F.lt(x, 3) & F.gt(x, 0), {"x": 5})

    def test_empty_conj_disj(self):
        assert evaluate(F.conj(), {})
        assert not evaluate(F.disj(), {})


class TestFreeVariables:
    def test_atom(self):
        assert F.lt(x + y, 3).free_variables() == {"x", "y"}

    def test_quantifier_binds(self):
        f = F.exists("x", F.lt(x, y))
        assert f.free_variables() == {"y"}

    def test_multi_quantifier(self):
        f = F.forall(["x", "y"], F.lt(x, y))
        assert f.free_variables() == set()


class TestSubstitution:
    def test_atom_substitution(self):
        f = F.lt(x, y)
        g = F.substitute(f, "x", 3)
        assert evaluate(g, {"y": 4})
        assert not evaluate(g, {"y": 3})

    def test_bound_variable_untouched(self):
        f = F.exists("x", F.eq(x, y))
        assert F.substitute(f, "x", 99) == f

    def test_capture_detected(self):
        f = F.exists("x", F.eq(x, y))
        with pytest.raises(ValueError):
            F.substitute(f, "y", x)


class TestQuantifierEvaluation:
    def test_exists_simple(self):
        # E x. 2x = y  <=>  y even
        f = F.exists("x", F.eq(2 * x, y))
        assert evaluate(f, {"y": 6})
        assert not evaluate(f, {"y": 7})

    def test_exists_with_bounds(self):
        # E x. 0 <= x & x < y
        f = F.exists("x", F.ge(x, 0) & F.lt(x, y))
        assert evaluate(f, {"y": 1})
        assert not evaluate(f, {"y": 0})

    def test_forall(self):
        # A x. (2 | x) | (2 | x + 1) — every integer is even or odd.
        f = F.forall("x", F.Or((F.Dvd(2, x), F.Dvd(2, x + 1))))
        assert evaluate(f, {})

    def test_forall_false(self):
        f = F.forall("x", F.lt(x, 100))
        assert not evaluate(f, {})

    def test_divisibility_only_window(self):
        # E x. x ≡ 3 (mod 7) — needs the periodic window only.
        f = F.exists("x", F.modeq(x, 3, 7))
        assert evaluate(f, {})

    def test_missing_free_variable_raises(self):
        with pytest.raises(KeyError):
            evaluate(F.lt(x, 3), {})

    def test_nested_mixing_raises_evaluation_error(self):
        # E z. E q. (x + z = y) & (3q = z): inner atom mixes z and q.
        f = F.exists(["z", "q"],
                     F.conj(F.eq(x + var("z"), y), F.eq(3 * var("q"), var("z"))))
        with pytest.raises(EvaluationError):
            evaluate(f, {"x": 1, "y": 4})

    @given(st.integers(-30, 30), st.integers(1, 8))
    def test_exists_multiple_of(self, value, m):
        # E k. x = m*k  <=>  m | x
        f = F.exists("k", F.eq(x, m * var("k")))
        assert evaluate(f, {"x": value}) == (value % m == 0)


class TestStructure:
    def test_is_quantifier_free(self):
        assert F.is_quantifier_free(F.lt(x, 1) & F.gt(x, 0))
        assert not F.is_quantifier_free(F.Not(F.exists("x", F.lt(x, 1))))

    def test_atoms_of(self):
        f = F.lt(x, 1) & F.Not(F.modeq(x, 0, 2))
        kinds = [type(a).__name__ for a in F.atoms_of(f)]
        assert kinds == ["Lt", "Dvd"]

    def test_repr_smoke(self):
        f = F.exists("x", F.lt(x, y) & F.modeq(x, 0, 2))
        text = repr(f)
        assert "E x." in text and "2 |" in text
