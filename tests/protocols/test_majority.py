"""Tests for majority / fraction-threshold predicates (flock of birds)."""

import pytest

from repro.analysis.stability import all_inputs_of_size, verify_stable_computation
from repro.protocols.majority import (
    at_least_fraction,
    flock_of_birds_protocol,
    majority_protocol,
    majority_truth,
    strict_majority_protocol,
)
from repro.sim.convergence import run_until_quiescent
from repro.sim.engine import simulate_counts


class TestConstruction:
    def test_flock_weights(self):
        p = flock_of_birds_protocol()
        # 20 x1 >= x0 + x1  <=>  x0 - 19 x1 < 1.
        assert p.weights == {0: 1, 1: -19}
        assert p.c == 1

    def test_fraction_reduced(self):
        # 10/20 reduces to 1/2 = majority weights.
        assert at_least_fraction(10, 20).weights == {0: 1, 1: -1}

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            at_least_fraction(0, 5)
        with pytest.raises(ValueError):
            at_least_fraction(6, 5)


class TestExactSemantics:
    def test_majority_exact(self):
        p = majority_protocol()
        results = verify_stable_computation(
            p, lambda c: c.get(1, 0) >= c.get(0, 0),
            all_inputs_of_size([0, 1], 5))
        assert all(results)

    def test_strict_majority_exact(self):
        p = strict_majority_protocol()
        results = verify_stable_computation(
            p, lambda c: c.get(1, 0) > c.get(0, 0),
            all_inputs_of_size([0, 1], 5))
        assert all(results)

    def test_one_third_exact(self):
        p = at_least_fraction(1, 3)
        results = verify_stable_computation(
            p, lambda c: 3 * c.get(1, 0) >= c.get(0, 0) + c.get(1, 0),
            all_inputs_of_size([0, 1], 5))
        assert all(results)


class TestFlockSimulation:
    """The paper's 5% question on simulated flocks."""

    @pytest.mark.parametrize("hot,total,expected", [
        (2, 40, 1),   # exactly 5%
        (2, 41, 0),   # just below
        (1, 20, 1),
        (0, 20, 0),
        (5, 100, 1),
        (4, 100, 0),
    ])
    def test_boundary_cases(self, hot, total, expected, seed):
        p = flock_of_birds_protocol()
        sim = simulate_counts(p, {0: total - hot, 1: hot}, seed=seed)
        result = run_until_quiescent(sim, patience=30_000, max_steps=3_000_000)
        assert result.output == expected


class TestTruthHelper:
    def test_weak(self):
        assert majority_truth(3, 3) is True
        assert majority_truth(4, 3) is False

    def test_strict(self):
        assert majority_truth(3, 3, strict=True) is False
        assert majority_truth(3, 4, strict=True) is True
