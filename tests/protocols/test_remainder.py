"""Tests for the Lemma 5 remainder protocol and parity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stability import all_inputs_of_size, verify_stable_computation
from repro.protocols.remainder import RemainderProtocol, parity_protocol
from repro.sim.convergence import run_until_quiescent
from repro.sim.engine import simulate_counts


class TestConstruction:
    def test_residues_normalized(self):
        p = RemainderProtocol({"a": 7, "b": -1}, c=5, m=3)
        assert p.c == 2
        assert p.initial_state("a") == (1, 0, 1)   # 7 mod 3
        assert p.initial_state("b") == (1, 0, 2)   # -1 mod 3

    def test_bad_modulus(self):
        with pytest.raises(ValueError):
            RemainderProtocol({"a": 1}, 0, 1)

    def test_empty_weights(self):
        with pytest.raises(ValueError):
            RemainderProtocol({}, 0, 2)


class TestDynamics:
    def test_leader_accumulates_mod_m(self):
        p = RemainderProtocol({"a": 1}, c=0, m=3)
        new_leader, new_follower = p.delta((1, 0, 2), (1, 0, 2))
        assert new_leader == (1, 1 if (2 + 2) % 3 == 0 else 0, 1)
        assert new_follower[2] == 0
        assert new_follower[0] == 0

    def test_no_leader_noop(self):
        p = RemainderProtocol({"a": 1}, c=0, m=3)
        follower = (0, 0, 0)
        assert p.delta(follower, follower) == (follower, follower)

    def test_sum_mod_m_invariant(self, seed):
        p = RemainderProtocol({"a": 1}, c=0, m=5)
        sim = simulate_counts(p, {"a": 13}, seed=seed)
        for _ in range(500):
            sim.step()
            assert sum(state[2] for state in sim.states) % 5 == 13 % 5


class TestStableComputation:
    @pytest.mark.parametrize("m,c", [(2, 0), (2, 1), (3, 1), (4, 2)])
    def test_exact(self, m, c):
        p = RemainderProtocol({"a": 1, "pad": 0}, c=c, m=m)
        results = verify_stable_computation(
            p, lambda counts: counts.get("a", 0) % m == c,
            all_inputs_of_size(["a", "pad"], 5))
        assert all(results)

    def test_exact_weighted(self):
        p = RemainderProtocol({"a": 1, "b": 2}, c=0, m=3)
        results = verify_stable_computation(
            p,
            lambda counts: (counts.get("a", 0) + 2 * counts.get("b", 0)) % 3 == 0,
            all_inputs_of_size(["a", "b"], 5))
        assert all(results)

    @settings(max_examples=25)
    @given(st.integers(2, 20), st.integers(2, 6), st.integers(0, 10_000))
    def test_simulation_matches_truth(self, count, m, seed):
        p = RemainderProtocol({"a": 1}, c=1, m=m)
        sim = simulate_counts(p, {"a": count}, seed=seed)
        result = run_until_quiescent(sim, patience=12_000, max_steps=800_000)
        assert result.output == (1 if count % m == 1 else 0)


class TestParity:
    def test_parity_exact(self):
        p = parity_protocol()
        results = verify_stable_computation(
            p, lambda counts: counts.get(1, 0) % 2 == 1,
            all_inputs_of_size([0, 1], 5))
        assert all(results)

    @pytest.mark.parametrize("ones,expected", [(3, 1), (4, 0), (0, 0), (7, 1)])
    def test_parity_simulation(self, ones, expected, seed):
        p = parity_protocol()
        sim = simulate_counts(p, {0: 10 - min(ones, 8), 1: ones}, seed=seed)
        result = run_until_quiescent(sim, patience=10_000, max_steps=500_000)
        assert result.output == expected
