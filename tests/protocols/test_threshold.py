"""Tests for the Lemma 5 threshold protocol."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stability import all_inputs_of_size, verify_stable_computation
from repro.protocols.threshold import ThresholdProtocol, count_at_least
from repro.sim.convergence import run_until_quiescent
from repro.sim.engine import simulate_counts


class TestConstruction:
    def test_s_parameter(self):
        p = ThresholdProtocol({"a": 3, "b": -1}, c=2)
        assert p.s == max(abs(2) + 1, 3)

    def test_s_dominated_by_weights(self):
        p = ThresholdProtocol({"a": 9}, c=0)
        assert p.s == 9

    def test_initial_state(self):
        p = ThresholdProtocol({"a": 3, "b": -1}, c=2)
        assert p.initial_state("a") == (1, 0, 3)
        assert p.initial_state("b") == (1, 0, -1)

    def test_unknown_symbol(self):
        with pytest.raises(ValueError):
            ThresholdProtocol({"a": 1}, 0).initial_state("z")

    def test_empty_weights(self):
        with pytest.raises(ValueError):
            ThresholdProtocol({}, 0)


class TestPaperHelpers:
    def test_q_r_identity(self):
        p = ThresholdProtocol({"a": 1}, c=3)
        s = p.s
        for u in range(-s, s + 1):
            for v in range(-s, s + 1):
                q = p.absorb(u, v)
                r = p.remainder(u, v)
                assert q + r == u + v
                assert -s <= q <= s
                assert -s <= r <= s

    def test_output_bit(self):
        p = ThresholdProtocol({"a": 1}, c=2)
        assert p.output_bit(0, 1) == 1   # 1 < 2
        assert p.output_bit(1, 1) == 0   # 2 < 2 is false


class TestDynamics:
    def test_no_leader_pair_is_noop(self):
        p = ThresholdProtocol({"a": 1}, c=1)
        follower = (0, 1, 0)
        assert p.delta(follower, follower) == (follower, follower)

    def test_leader_absorbs(self):
        p = ThresholdProtocol({"a": 1}, c=2)
        leader = (1, 0, 1)
        other = (1, 0, 1)
        new_leader, new_follower = p.delta(leader, other)
        assert new_leader == (1, 0, 2)
        assert new_follower == (0, 0, 0)

    def test_clamping_leaves_remainder(self):
        p = ThresholdProtocol({"a": 2}, c=0)  # s = 2
        new_leader, new_follower = p.delta((1, 0, 2), (0, 0, 2))
        assert new_leader[2] == 2
        assert new_follower[2] == 2

    def test_count_sum_invariant(self, seed):
        p = ThresholdProtocol({"a": 2, "b": -3}, c=1)
        sim = simulate_counts(p, {"a": 5, "b": 3}, seed=seed)
        expected = 5 * 2 + 3 * (-3)
        for _ in range(500):
            sim.step()
            assert sum(state[2] for state in sim.states) == expected

    def test_single_leader_eventually(self, seed):
        p = ThresholdProtocol({"a": 1}, c=3)
        sim = simulate_counts(p, {"a": 10}, seed=seed)
        sim.run_until(
            lambda s: sum(state[0] for state in s.states) == 1,
            max_steps=100_000, check_every=50)
        assert sum(state[0] for state in sim.states) == 1

    def test_leader_count_never_increases(self, seed):
        p = ThresholdProtocol({"a": 1}, c=3)
        sim = simulate_counts(p, {"a": 8}, seed=seed)
        previous = 8
        for _ in range(2000):
            sim.step()
            leaders = sum(state[0] for state in sim.states)
            assert leaders <= previous
            previous = leaders


class TestStableComputation:
    @pytest.mark.parametrize("c", [-1, 0, 1, 2])
    def test_exact_single_variable(self, c):
        p = ThresholdProtocol({"a": 1, "pad": 0}, c=c)
        results = verify_stable_computation(
            p, lambda counts: counts.get("a", 0) < c,
            all_inputs_of_size(["a", "pad"], 4))
        assert all(results)

    def test_exact_two_variables(self):
        # x - y < 1, i.e. majority of b.
        p = ThresholdProtocol({"a": 1, "b": -1}, c=1)
        results = verify_stable_computation(
            p, lambda counts: counts.get("a", 0) - counts.get("b", 0) < 1,
            all_inputs_of_size(["a", "b"], 4))
        assert all(results)

    @settings(max_examples=25)
    @given(st.integers(0, 14), st.integers(0, 14), st.integers(0, 10_000))
    def test_simulation_matches_truth(self, a_count, b_count, seed):
        if a_count + b_count < 2:
            a_count, b_count = 2, b_count
        p = ThresholdProtocol({"a": 2, "b": -1}, c=3)
        sim = simulate_counts(p, {"a": a_count, "b": b_count}, seed=seed)
        result = run_until_quiescent(sim, patience=12_000, max_steps=800_000)
        want = 1 if 2 * a_count - b_count < 3 else 0
        assert result.output == want


class TestCountAtLeast:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_matches_counting_semantics(self, k):
        p = count_at_least(k)
        results = verify_stable_computation(
            p, lambda counts: counts.get(1, 0) >= k,
            all_inputs_of_size([0, 1], k + 2))
        assert all(results)

    def test_bad_k(self):
        with pytest.raises(ValueError):
            count_at_least(0)

    def test_predicate_helper(self):
        p = ThresholdProtocol({"a": 2, "b": -1}, c=3)
        assert p.predicate({"a": 1, "b": 0}) is True
        assert p.predicate({"a": 2, "b": 0}) is False
