"""Tests for the Theorem 7 / Fig. 1 baton simulator."""

import pytest

from repro.core.population import (
    line_population,
    random_connected_population,
    ring_population,
    star_population,
)
from repro.protocols.counting import CountToK, count_to_five
from repro.protocols.graph_simulation import (
    BLANK,
    DEFAULT,
    INITIATOR_BATON,
    RESPONDER_BATON,
    GraphSimulationProtocol,
)
from repro.protocols.majority import majority_protocol
from repro.protocols.remainder import parity_protocol
from repro.sim.convergence import run_until_quiescent
from repro.sim.engine import Simulation


class TestFigureOneRules:
    """The transition table of Fig. 1, rule by rule."""

    def setup_method(self):
        self.p = GraphSimulationProtocol(CountToK(3))

    def test_group_a_double_default(self):
        assert self.p.delta(("x", DEFAULT), ("y", DEFAULT)) == \
            (("x", INITIATOR_BATON), ("y", RESPONDER_BATON))

    def test_group_a_initiator_default(self):
        for other in (INITIATOR_BATON, RESPONDER_BATON, BLANK):
            assert self.p.delta(("x", DEFAULT), ("y", other)) == \
                (("x", BLANK), ("y", other))

    def test_group_a_responder_default(self):
        for other in (INITIATOR_BATON, RESPONDER_BATON, BLANK):
            assert self.p.delta(("x", other), ("y", DEFAULT)) == \
                (("x", other), ("y", BLANK))

    def test_group_b_duplicate_batons(self):
        assert self.p.delta(("x", INITIATOR_BATON), ("y", INITIATOR_BATON)) == \
            (("x", INITIATOR_BATON), ("y", BLANK))
        assert self.p.delta(("x", RESPONDER_BATON), ("y", RESPONDER_BATON)) == \
            (("x", RESPONDER_BATON), ("y", BLANK))

    def test_group_c_baton_movement(self):
        assert self.p.delta(("x", INITIATOR_BATON), ("y", BLANK)) == \
            (("x", BLANK), ("y", INITIATOR_BATON))
        assert self.p.delta(("x", BLANK), ("y", RESPONDER_BATON)) == \
            (("x", RESPONDER_BATON), ("y", BLANK))

    def test_group_d_state_swap(self):
        assert self.p.delta(("x", BLANK), ("y", BLANK)) == \
            (("y", BLANK), ("x", BLANK))

    def test_group_e_simulated_transition(self):
        inner = CountToK(3)
        x2, y2 = inner.delta(1, 1)
        assert self.p.delta((1, INITIATOR_BATON), (1, RESPONDER_BATON)) == \
            ((x2, RESPONDER_BATON), (y2, INITIATOR_BATON))

    def test_group_e_reversed_roles(self):
        """(yR, xS) -> (y'S, x'R): the S-holder is the simulated initiator
        even when it is the A'-responder."""
        inner = CountToK(3)
        x2, y2 = inner.delta(2, 1)  # S-holder has 2, R-holder has 1
        got = self.p.delta((1, RESPONDER_BATON), (2, INITIATOR_BATON))
        assert got == ((y2, INITIATOR_BATON), (x2, RESPONDER_BATON))

    def test_batons_conserved_after_cleanup(self):
        """Once no D batons remain, every rule preserves the baton multiset."""
        import collections
        for b1 in (INITIATOR_BATON, RESPONDER_BATON, BLANK):
            for b2 in (INITIATOR_BATON, RESPONDER_BATON, BLANK):
                before = collections.Counter([b1, b2])
                (_, nb1), (_, nb2) = self.p.delta((1, b1), (0, b2))
                after = collections.Counter([nb1, nb2])
                if b1 == b2 and b1 in (INITIATOR_BATON, RESPONDER_BATON):
                    # group (b) deliberately destroys a duplicate baton
                    assert after[BLANK] == before[BLANK] + 1
                else:
                    assert after == before

    def test_io_maps_pass_through(self):
        inner = CountToK(3)
        assert self.p.initial_state(1) == (1, DEFAULT)
        assert self.p.output((3, BLANK)) == inner.output(3)


class TestCleanliness:
    def test_is_clean(self):
        states = [(0, INITIATOR_BATON), (0, RESPONDER_BATON), (0, BLANK)]
        assert GraphSimulationProtocol.is_clean(states)
        assert not GraphSimulationProtocol.is_clean(
            states + [(0, DEFAULT)])
        assert not GraphSimulationProtocol.is_clean(
            [(0, INITIATOR_BATON), (0, INITIATOR_BATON), (0, RESPONDER_BATON)])

    def test_simulation_becomes_clean(self, seed):
        p = GraphSimulationProtocol(CountToK(2))
        pop = line_population(6)
        sim = Simulation(p, [1, 0, 1, 0, 0, 0], population=pop, seed=seed)
        sim.run_until(lambda s: GraphSimulationProtocol.is_clean(s.states),
                      max_steps=100_000, check_every=20)
        assert GraphSimulationProtocol.is_clean(sim.states)
        # Cleanliness is preserved forever after.
        for _ in range(2000):
            sim.step()
        assert GraphSimulationProtocol.is_clean(sim.states)


@pytest.mark.parametrize("make_population", [
    line_population,
    ring_population,
    star_population,
    lambda n: random_connected_population(n, 0.2, seed=5),
], ids=["line", "ring", "star", "random"])
class TestStableComputationOnGraphs:
    """Theorem 7 end to end on assorted weakly-connected graphs."""

    def test_count_to_five_positive(self, make_population, seed):
        p = GraphSimulationProtocol(count_to_five())
        pop = make_population(8)
        inputs = [1, 1, 0, 1, 0, 1, 1, 0]  # five ones
        sim = Simulation(p, inputs, population=pop, seed=seed)
        result = run_until_quiescent(sim, patience=80_000, max_steps=8_000_000)
        assert result.output == 1

    def test_count_to_five_negative(self, make_population, seed):
        p = GraphSimulationProtocol(count_to_five())
        pop = make_population(8)
        inputs = [1, 1, 0, 1, 0, 0, 1, 0]  # four ones
        sim = Simulation(p, inputs, population=pop, seed=seed)
        result = run_until_quiescent(sim, patience=80_000, max_steps=8_000_000)
        assert result.output == 0

    def test_parity(self, make_population, seed):
        p = GraphSimulationProtocol(parity_protocol())
        pop = make_population(7)
        inputs = [1, 0, 1, 1, 0, 0, 0]  # three ones: odd
        sim = Simulation(p, inputs, population=pop, seed=seed)
        result = run_until_quiescent(sim, patience=80_000, max_steps=8_000_000)
        assert result.output == 1

    def test_majority(self, make_population, seed):
        p = GraphSimulationProtocol(majority_protocol())
        pop = make_population(7)
        inputs = [1, 1, 1, 1, 0, 0, 0]
        sim = Simulation(p, inputs, population=pop, seed=seed)
        result = run_until_quiescent(sim, patience=80_000, max_steps=8_000_000)
        assert result.output == 1
