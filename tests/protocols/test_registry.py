"""Tests for the protocol catalogue."""

import pytest

from repro.core.protocol import PopulationProtocol
from repro.protocols import registry
from repro.sim.convergence import run_until_quiescent
from repro.sim.engine import simulate_counts


class TestCatalogue:
    def test_names_sorted(self):
        assert registry.names() == sorted(registry.names())

    def test_expected_entries_present(self):
        for name in ("count-to-k", "epidemic", "majority", "parity",
                     "flock-of-birds", "quotient-3", "one-way-count-to-k"):
            assert name in registry.names()

    def test_get_unknown(self):
        with pytest.raises(KeyError):
            registry.get("teleportation")

    def test_duplicate_registration_rejected(self):
        entry = registry.get("parity")
        with pytest.raises(ValueError):
            registry.register(entry)

    def test_all_factories_build(self):
        for entry in registry.entries():
            protocol = entry.build()
            assert isinstance(protocol, PopulationProtocol)
            protocol.validate()


class TestParameters:
    def test_parameterized_build(self):
        protocol = registry.get("count-to-k").build(k=3)
        assert protocol.k == 3

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError):
            registry.get("count-to-k").build(zoom=3)

    def test_parameterless_entry_rejects_params(self):
        with pytest.raises(ValueError):
            registry.get("majority").build(k=3)

    def test_truth_respects_parameters(self):
        entry = registry.get("count-to-k")
        assert entry.evaluate_truth({1: 3}, k=3)
        assert not entry.evaluate_truth({1: 2}, k=3)

    def test_truth_missing_for_functions(self):
        with pytest.raises(ValueError):
            registry.get("quotient-3").evaluate_truth({1: 3})


class TestEndToEnd:
    @pytest.mark.parametrize("name,counts,params", [
        ("epidemic", {1: 1, 0: 9}, {}),
        ("majority", {1: 6, 0: 4}, {}),
        ("parity", {1: 3, 0: 5}, {}),
        ("count-to-k", {1: 4, 0: 4}, {"k": 4}),
        ("one-way-count-to-k", {1: 3, 0: 5}, {"k": 3}),
    ])
    def test_catalogue_protocols_match_their_truth(self, name, counts,
                                                   params, seed):
        entry = registry.get(name)
        protocol = entry.build(**params)
        expected = 1 if entry.evaluate_truth(counts, **params) else 0
        sim = simulate_counts(protocol, counts, seed=seed)
        result = run_until_quiescent(sim, patience=20_000,
                                     max_steps=3_000_000)
        assert result.output == expected
