"""Tests for the count-to-k and epidemic protocols (paper Sect. 1/3)."""

import pytest

from repro.analysis.stability import all_inputs_of_size, verify_stable_computation
from repro.protocols.counting import (
    CountToK,
    Epidemic,
    RedundantCountToK,
    count_to_five,
)
from repro.sim.convergence import run_until_quiescent
from repro.sim.engine import simulate_counts
from repro.sim.faults import FaultPlan, TargetedCrash
from repro.util.rng import spawn_seeds


class TestDefinition:
    def test_paper_transition_table(self):
        p = count_to_five()
        # delta(q_i, q_j) = (q_{i+j}, q_0) when i + j < 5, else (q_5, q_5).
        assert p.delta(2, 2) == (4, 0)
        assert p.delta(3, 2) == (5, 5)
        assert p.delta(5, 0) == (5, 5)
        assert p.delta(0, 0) == (0, 0)

    def test_input_output_maps(self):
        p = count_to_five()
        assert p.initial_state(0) == 0
        assert p.initial_state(1) == 1
        assert p.output(5) == 1
        assert all(p.output(i) == 0 for i in range(5))

    def test_bad_input_symbol(self):
        with pytest.raises(ValueError):
            count_to_five().initial_state(2)

    def test_bad_k(self):
        with pytest.raises(ValueError):
            CountToK(0)


class TestStableComputation:
    """Exhaustive model checks: every fair computation converges correctly."""

    @pytest.mark.parametrize("n", [5, 6, 7, 8])
    def test_count_to_five_exact(self, n):
        p = count_to_five()
        results = verify_stable_computation(
            p, lambda c: c.get(1, 0) >= 5, all_inputs_of_size([0, 1], n))
        assert all(results)

    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_count_to_k_exact(self, k):
        p = CountToK(k)
        results = verify_stable_computation(
            p, lambda c: c.get(1, 0) >= k, all_inputs_of_size([0, 1], k + 2))
        assert all(results)


class TestSimulation:
    @pytest.mark.parametrize("ones,expected", [(4, 0), (5, 1), (9, 1), (0, 0)])
    def test_random_pairing_converges(self, ones, expected, seed):
        p = count_to_five()
        sim = simulate_counts(p, {0: 12 - ones, 1: ones}, seed=seed)
        result = run_until_quiescent(sim, patience=6000, max_steps=500_000)
        assert result.output == expected

    def test_token_count_invariant(self, seed):
        """Before any alert, the total token count is conserved."""
        p = count_to_five()
        sim = simulate_counts(p, {0: 8, 1: 4}, seed=seed)
        for _ in range(2000):
            sim.step()
            states = sim.states
            assert 5 not in states  # 4 ones can never alert
            assert sum(states) == 4


class TestEpidemic:
    def test_or_semantics_exact(self):
        p = Epidemic()
        results = verify_stable_computation(
            p, lambda c: c.get(1, 0) >= 1, all_inputs_of_size([0, 1], 5))
        assert all(results)

    def test_one_infected_spreads_to_all(self, seed):
        p = Epidemic()
        sim = simulate_counts(p, {0: 49, 1: 1}, seed=seed)
        sim.run_until(lambda s: s.unanimous_output() == 1,
                      max_steps=200_000, check_every=50)
        assert sim.unanimous_output() == 1

    def test_no_spontaneous_infection(self, seed):
        p = Epidemic()
        sim = simulate_counts(p, {0: 20}, seed=seed)
        sim.run(5000)
        assert sim.unanimous_output() == 0

    def test_monotone(self):
        p = Epidemic()
        for a in (0, 1):
            for b in (0, 1):
                p2, q2 = p.delta(a, b)
                assert p2 >= a and q2 >= b


class TestRedundantCountToK:
    def test_transition_rules(self):
        p = RedundantCountToK(5, cap=3)
        assert p.delta(1, 1) == (2, 0)        # plain merge under the cap
        assert p.delta(3, 1) == (3, 1)        # rebalance at the cap
        assert p.delta(2, 2) == (3, 1)        # rebalance, piles stay <= cap
        assert p.delta(2, 3) == (5, 5)        # pair jointly witnesses k
        assert p.delta(3, 3) == (5, 5)
        assert p.delta(5, 0) == (5, 5)        # alert is epidemic
        assert p.delta(0, 0) == (0, 0)

    def test_default_cap_is_half_k_rounded_up(self):
        assert RedundantCountToK(5).cap == 3
        assert RedundantCountToK(6).cap == 3
        assert RedundantCountToK(9).cap == 5

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            RedundantCountToK(1)
        with pytest.raises(ValueError):
            RedundantCountToK(5, cap=2)   # 2 * cap < k: alert unreachable
        with pytest.raises(ValueError):
            RedundantCountToK(5, cap=5)   # cap = k collides with the alert

    def test_no_pile_exceeds_cap_before_alert(self, seed):
        p = RedundantCountToK(5, cap=3)
        sim = simulate_counts(p, {1: 4, 0: 8}, seed=seed)
        for _ in range(2000):
            sim.step()
            assert 5 not in sim.states     # 4 tokens can never alert
            assert all(s <= 3 for s in sim.states)
            assert sum(sim.states) == 4    # token conservation

    @pytest.mark.parametrize("n", [4, 5, 6, 7])
    def test_stable_computation_exact(self, n):
        p = RedundantCountToK(3, cap=2)
        results = verify_stable_computation(
            p, lambda c: c.get(1, 0) >= 3, all_inputs_of_size([0, 1], n))
        assert all(results)

    @pytest.mark.parametrize("cap", [3, 4])
    def test_stable_computation_k5(self, cap):
        p = RedundantCountToK(5, cap=cap)
        results = verify_stable_computation(
            p, lambda c: c.get(1, 0) >= 5, all_inputs_of_size([0, 1], 6))
        assert all(results)

    def test_survives_crash_of_largest_pile(self, seed):
        """With slack >= cap, killing a full pile cannot flip the answer —
        the crash tolerance CountToK lacks (see TestRobustness in
        tests/sim/test_faults.py for the fragile half)."""
        for s in spawn_seeds(seed, 10):
            plan = FaultPlan(TargetedCrash(lambda st: st == 3, 1),
                             seed=s + 1)
            sim = simulate_counts(RedundantCountToK(5, cap=3),
                                  {1: 8, 0: 8}, seed=s, faults=plan)
            result = run_until_quiescent(sim, patience=4000,
                                         max_steps=100_000)
            assert result.output == 1
