"""Tests for the Theorem 2 output-convention conversion."""

import pytest

from repro.analysis.stability import all_inputs_of_size, verify_stable_computation
from repro.core.protocol import ProtocolError
from repro.protocols.output_conversion import (
    AllAgentsFromZeroNonZero,
    ZeroNonZeroWitness,
)
from repro.sim.convergence import run_until_quiescent
from repro.sim.engine import simulate_counts


class TestWitnessProtocol:
    """The inner protocol computes thresholds only in the zero/non-zero
    sense: a single witness raises its output to 1."""

    def test_witness_accumulates(self):
        p = ZeroNonZeroWitness(3)
        assert p.delta(1, 1) == (2, 0)
        assert p.delta(2, 1) == (3, 0)
        assert p.delta(2, 2) == (3, 0)  # capped at k

    def test_single_agent_outputs_one(self, seed):
        p = ZeroNonZeroWitness(3)
        sim = simulate_counts(p, {0: 6, 1: 4}, seed=seed)
        sim.run_until(lambda s: 1 in [p.output(st) for st in s.states],
                      max_steps=200_000, check_every=20)
        outputs = [p.output(st) for st in sim.states]
        assert outputs.count(1) == 1  # exactly one witness
        assert outputs.count(0) == 9

    def test_not_all_agents_convention(self):
        """Under the all-agents convention the witness protocol does NOT
        stably compute the threshold — this is why Theorem 2 is needed."""
        from repro.analysis.stability import verify_predicate_on_input

        p = ZeroNonZeroWitness(2)
        result = verify_predicate_on_input(p, {0: 2, 1: 2}, True)
        assert not result.holds

    def test_bad_k(self):
        with pytest.raises(ValueError):
            ZeroNonZeroWitness(0)


class TestConversion:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_converted_protocol_exact(self, k):
        converted = AllAgentsFromZeroNonZero(ZeroNonZeroWitness(k))
        results = verify_stable_computation(
            converted, lambda c: c.get(1, 0) >= k,
            all_inputs_of_size([0, 1], k + 2))
        assert all(results)

    @pytest.mark.parametrize("ones,expected", [(0, 0), (2, 0), (3, 1), (7, 1)])
    def test_converted_simulation(self, ones, expected, seed):
        converted = AllAgentsFromZeroNonZero(ZeroNonZeroWitness(3))
        sim = simulate_counts(converted, {0: 10 - min(ones, 9), 1: ones},
                              seed=seed)
        result = run_until_quiescent(sim, patience=15_000, max_steps=1_000_000)
        assert result.output == expected

    def test_leadership_moves_to_positive_output(self, seed):
        """After stabilization the (unique) leader is an agent whose
        embedded output is 1 whenever any agent outputs 1."""
        converted = AllAgentsFromZeroNonZero(ZeroNonZeroWitness(2))
        sim = simulate_counts(converted, {0: 6, 1: 4}, seed=seed)
        run_until_quiescent(sim, patience=15_000, max_steps=1_000_000)
        leaders = [st for st in sim.states if st[0] == 1]
        assert len(leaders) == 1
        inner = converted.inner
        assert inner.output(leaders[0][2]) == 1

    def test_rejects_non_bit_inner(self):
        nonbit = ZeroNonZeroWitness(2)
        nonbit.output_alphabet = frozenset({"x"})
        with pytest.raises(ProtocolError):
            AllAgentsFromZeroNonZero(nonbit)

    def test_initial_state_shape(self):
        converted = AllAgentsFromZeroNonZero(ZeroNonZeroWitness(2))
        assert converted.initial_state(1) == (1, 0, 1)
