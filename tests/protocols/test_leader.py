"""Tests for leader election and its (n-1)^2 expected time (paper Sect. 6)."""

import pytest

from repro.analysis.markov import MarkovAnalysis
from repro.protocols.leader import (
    FOLLOWER,
    LEADER,
    LeaderElection,
    expected_election_interactions,
    leader_count,
)
from repro.sim.engine import simulate_counts
from repro.sim.stats import run_trials
from repro.util.multiset import FrozenMultiset


class TestDynamics:
    def test_two_leaders_collapse(self):
        p = LeaderElection()
        assert p.delta(LEADER, LEADER) == (LEADER, FOLLOWER)

    def test_other_pairs_noop(self):
        p = LeaderElection()
        assert p.delta(LEADER, FOLLOWER) == (LEADER, FOLLOWER)
        assert p.delta(FOLLOWER, LEADER) == (FOLLOWER, LEADER)
        assert p.delta(FOLLOWER, FOLLOWER) == (FOLLOWER, FOLLOWER)

    def test_all_inputs_start_as_leader(self):
        p = LeaderElection()
        assert p.initial_state(0) == LEADER
        assert p.initial_state(1) == LEADER

    def test_leader_count_helper(self):
        assert leader_count(FrozenMultiset({LEADER: 3, FOLLOWER: 2})) == 3


class TestExactExpectation:
    """The paper's formula sum_{i=2..n} C(n,2)/C(i,2) = (n-1)^2, checked
    against the exact Markov chain."""

    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 8])
    def test_markov_matches_formula(self, n):
        analysis = MarkovAnalysis(LeaderElection(), {1: n})
        expected = analysis.expected_convergence_interactions()
        assert expected == pytest.approx(expected_election_interactions(n), rel=1e-9)

    def test_formula_values(self):
        assert expected_election_interactions(2) == 1
        assert expected_election_interactions(10) == 81

    def test_formula_rejects_tiny(self):
        with pytest.raises(ValueError):
            expected_election_interactions(1)


class TestSimulatedExpectation:
    def test_mean_close_to_formula(self, seed):
        n = 12

        def trial(trial_seed: int) -> float:
            sim = simulate_counts(LeaderElection(), {1: n}, seed=trial_seed)
            sim.run_until(
                lambda s: sum(1 for st in s.states if st == LEADER) == 1,
                max_steps=100_000, check_every=1)
            return sim.interactions

        summary = run_trials(trial, trials=300, seed=seed)
        want = expected_election_interactions(n)
        # 300 trials: allow a generous 5-sigma band.
        assert abs(summary.mean - want) < 5 * summary.stderr + 1

    def test_leader_never_vanishes(self, seed):
        sim = simulate_counts(LeaderElection(), {1: 9}, seed=seed)
        for _ in range(3000):
            sim.step()
            assert sum(1 for st in sim.states if st == LEADER) >= 1
