"""Tests for protocol composition (Lemma 3 / Corollary 2)."""

import pytest

from repro.analysis.stability import all_inputs_of_size, verify_stable_computation
from repro.core.protocol import ProtocolError
from repro.protocols.composition import (
    BooleanCombination,
    ProductProtocol,
    and_protocol,
    not_protocol,
    or_protocol,
    xor_protocol,
)
from repro.protocols.counting import CountToK
from repro.protocols.remainder import RemainderProtocol
from repro.protocols.threshold import ThresholdProtocol


def at_least(k):
    return CountToK(k)


def ones_mod(m, c):
    return RemainderProtocol({0: 0, 1: 1}, c=c, m=m)


class TestProductProtocol:
    def test_components_step_independently(self):
        prod = ProductProtocol([at_least(3), ones_mod(2, 1)])
        s = prod.initial_state(1)
        assert s == (1, (1, 0, 1))
        p2, q2 = prod.delta(s, s)
        assert p2[0] == 2 and q2[0] == 0          # counting component
        assert p2[1][0] == 1 and q2[1][0] == 0    # leader bits of remainder

    def test_mismatched_alphabets_rejected(self):
        with pytest.raises(ProtocolError):
            ProductProtocol([at_least(2), ThresholdProtocol({"a": 1}, 0)])

    def test_empty_rejected(self):
        with pytest.raises(ProtocolError):
            ProductProtocol([])

    def test_output_tuple(self):
        prod = ProductProtocol([at_least(1), ones_mod(2, 1)])
        s = prod.initial_state(1)
        assert prod.output(s) == (1, 0)


class TestBooleanCombination:
    def test_requires_bit_components(self):
        nonbit = CountToK(2)
        nonbit.output_alphabet = frozenset({"x"})
        with pytest.raises(ProtocolError):
            BooleanCombination([nonbit], lambda b: b)

    def test_and_exact(self):
        # at least 2 ones AND odd number of ones.
        p = and_protocol(at_least(2), ones_mod(2, 1))
        results = verify_stable_computation(
            p, lambda c: c.get(1, 0) >= 2 and c.get(1, 0) % 2 == 1,
            all_inputs_of_size([0, 1], 5))
        assert all(results)

    def test_or_exact(self):
        p = or_protocol(at_least(3), ones_mod(2, 0))
        results = verify_stable_computation(
            p, lambda c: c.get(1, 0) >= 3 or c.get(1, 0) % 2 == 0,
            all_inputs_of_size([0, 1], 5))
        assert all(results)

    def test_xor_exact(self):
        p = xor_protocol(at_least(2), ones_mod(2, 1))
        results = verify_stable_computation(
            p, lambda c: (c.get(1, 0) >= 2) != (c.get(1, 0) % 2 == 1),
            all_inputs_of_size([0, 1], 5))
        assert all(results)

    def test_three_way_combination(self):
        p = BooleanCombination(
            [at_least(1), at_least(3), ones_mod(2, 1)],
            lambda a, b, c: a and (b or c))
        results = verify_stable_computation(
            p,
            lambda counts: counts.get(1, 0) >= 1 and (
                counts.get(1, 0) >= 3 or counts.get(1, 0) % 2 == 1),
            all_inputs_of_size([0, 1], 4))
        assert all(results)


class TestNegation:
    def test_not_exact(self):
        p = not_protocol(at_least(2))
        results = verify_stable_computation(
            p, lambda c: c.get(1, 0) < 2, all_inputs_of_size([0, 1], 5))
        assert all(results)

    def test_double_negation_matches(self):
        p = not_protocol(not_protocol(at_least(2)))
        inner = at_least(2)
        for s in inner.states():
            assert p.output(s) == inner.output(s)

    def test_requires_bits(self):
        nonbit = CountToK(2)
        nonbit.output_alphabet = frozenset({"x"})
        with pytest.raises(ProtocolError):
            not_protocol(nonbit)

    def test_delta_passthrough(self):
        p = not_protocol(at_least(2))
        assert p.delta(1, 1) == at_least(2).delta(1, 1)
