"""Tests for the one-way (immediate observation) protocol (Sect. 8)."""

import pytest

from repro.analysis.stability import all_inputs_of_size, verify_stable_computation
from repro.protocols.counting import count_to_five
from repro.protocols.one_way import OneWayCountToK, is_one_way
from repro.sim.convergence import run_until_quiescent
from repro.sim.engine import simulate_counts


class TestOneWayProperty:
    def test_protocol_is_one_way(self):
        assert is_one_way(OneWayCountToK(3))

    def test_two_way_protocol_detected(self):
        assert not is_one_way(count_to_five())


class TestDynamics:
    def test_responder_climbs_on_same_level(self):
        p = OneWayCountToK(4)
        assert p.delta(2, 2) == (2, 3)

    def test_no_climb_on_different_levels(self):
        p = OneWayCountToK(4)
        assert p.delta(2, 1) == (2, 1)
        assert p.delta(1, 2) == (1, 2)

    def test_zero_level_inert(self):
        p = OneWayCountToK(4)
        assert p.delta(0, 0) == (0, 0)

    def test_alert_spreads_one_way(self):
        p = OneWayCountToK(3)
        assert p.delta(3, 0) == (3, 3)
        assert p.delta(0, 3) == (0, 3)  # responder unchanged? no: observes 0

    def test_bad_k(self):
        with pytest.raises(ValueError):
            OneWayCountToK(0)


class TestStableComputation:
    """The paper's claim: threshold-k is still computable one-way.

    Model-checked exhaustively: soundness (level k requires k ones) and
    completeness (k ones always eventually alert) over all small inputs.
    """

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_exact(self, k):
        p = OneWayCountToK(k)
        results = verify_stable_computation(
            p, lambda c: c.get(1, 0) >= k,
            all_inputs_of_size([0, 1], k + 3))
        assert all(results)

    def test_exact_k4_n6(self):
        p = OneWayCountToK(4)
        results = verify_stable_computation(
            p, lambda c: c.get(1, 0) >= 4, all_inputs_of_size([0, 1], 6))
        assert all(results)


class TestSimulation:
    @pytest.mark.parametrize("ones,expected", [(2, 0), (3, 1), (6, 1)])
    def test_random_pairing(self, ones, expected, seed):
        p = OneWayCountToK(3)
        sim = simulate_counts(p, {0: 12 - ones, 1: ones}, seed=seed)
        result = run_until_quiescent(sim, patience=30_000, max_steps=3_000_000)
        assert result.output == expected

    def test_max_level_bounded_by_ones(self, seed):
        p = OneWayCountToK(5)
        ones = 3
        sim = simulate_counts(p, {0: 9, 1: ones}, seed=seed)
        for _ in range(30_000):
            sim.step()
            assert max(sim.states) <= ones
