"""Tests for the integer-function protocols (difference, min, max)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conventions import ScalarIntegerOutput
from repro.core.semantics import is_silent
from repro.protocols.arithmetic import (
    DifferenceProtocol,
    MaxProtocol,
    MinProtocol,
    difference_inputs,
    min_max_inputs,
)
from repro.sim.engine import simulate_counts


def run_to_silence(protocol, counts, seed):
    sim = simulate_counts(protocol, counts, seed=seed)
    done = sim.run_until(lambda s: is_silent(protocol, s.multiset()),
                         max_steps=5_000_000, check_every=max(4, sim.n))
    assert done
    return sim


class TestDifference:
    def test_annihilation_rule(self):
        p = DifferenceProtocol()
        assert p.delta(1, -1) == (0, 0)
        assert p.delta(-1, 1) == (0, 0)
        assert p.delta(1, 1) == (1, 1)
        assert p.delta(0, -1) == (0, -1)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            DifferenceProtocol().initial_state("z")
        with pytest.raises(ValueError):
            difference_inputs(5, 5, 8)
        with pytest.raises(ValueError):
            difference_inputs(-1, 0, 8)

    @settings(max_examples=40)
    @given(st.integers(0, 8), st.integers(0, 8), st.integers(0, 5000))
    def test_computes_difference(self, x, y, seed):
        n = max(x + y + 2, 4)
        sim = run_to_silence(DifferenceProtocol(),
                             difference_inputs(x, y, n), seed)
        assert ScalarIntegerOutput().decode(sim.outputs()) == x - y

    def test_sum_invariant_every_step(self, seed):
        p = DifferenceProtocol()
        sim = simulate_counts(p, difference_inputs(5, 3, 12), seed=seed)
        for _ in range(500):
            sim.step()
            assert sum(sim.states) == 2


class TestMinMax:
    def test_pairing_rule(self):
        p = MinProtocol()
        assert p.delta("x", "y") == ("p", "s")
        assert p.delta("y", "x") == ("p", "s")
        assert p.delta("x", "x") == ("x", "x")
        assert p.delta("p", "y") == ("p", "y")

    @settings(max_examples=40)
    @given(st.integers(0, 8), st.integers(0, 8), st.integers(0, 5000))
    def test_min(self, x, y, seed):
        n = max(x + y + 2, 4)
        sim = run_to_silence(MinProtocol(), min_max_inputs(x, y, n), seed)
        assert ScalarIntegerOutput().decode(sim.outputs()) == min(x, y)

    @settings(max_examples=40)
    @given(st.integers(0, 8), st.integers(0, 8), st.integers(0, 5000))
    def test_max(self, x, y, seed):
        n = max(x + y + 2, 4)
        sim = run_to_silence(MaxProtocol(), min_max_inputs(x, y, n), seed)
        assert ScalarIntegerOutput().decode(sim.outputs()) == max(x, y)

    def test_min_plus_max_is_sum(self, seed):
        x, y = 5, 3
        n = 12
        sim_min = run_to_silence(MinProtocol(), min_max_inputs(x, y, n), seed)
        sim_max = run_to_silence(MaxProtocol(), min_max_inputs(x, y, n), seed)
        decoded_min = ScalarIntegerOutput().decode(sim_min.outputs())
        decoded_max = ScalarIntegerOutput().decode(sim_max.outputs())
        assert decoded_min + decoded_max == x + y

    def test_input_validation(self):
        with pytest.raises(ValueError):
            MinProtocol().initial_state("q")
        with pytest.raises(ValueError):
            min_max_inputs(5, 5, 8)
