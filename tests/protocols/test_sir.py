"""Tests for the one-way SIR epidemic protocol and its fluid oracle."""

from collections import Counter

import pytest

from repro.protocols import registry
from repro.protocols.one_way import is_one_way
from repro.protocols.sir import (
    INFECTED,
    RECOVERED,
    SUSCEPTIBLE,
    SIREpidemic,
    sir_fluid_endpoint,
)
from repro.sim.engine import simulate_counts


class TestDynamics:
    def test_infection(self):
        p = SIREpidemic()
        assert p.delta(INFECTED, SUSCEPTIBLE) == (INFECTED, INFECTED)

    def test_recovery(self):
        p = SIREpidemic()
        assert p.delta(RECOVERED, INFECTED) == (RECOVERED, RECOVERED)

    def test_everything_else_is_inert(self):
        p = SIREpidemic()
        states = (SUSCEPTIBLE, INFECTED, RECOVERED)
        reactive = {(INFECTED, SUSCEPTIBLE), (RECOVERED, INFECTED)}
        for a in states:
            for b in states:
                if (a, b) not in reactive:
                    assert p.delta(a, b) == (a, b)

    def test_transitions_are_one_way(self):
        # Only the responder ever changes: the Sect. 8
        # immediate-observation restriction.
        assert is_one_way(SIREpidemic())

    def test_initial_state_mapping(self):
        p = SIREpidemic()
        assert p.initial_state(0) == SUSCEPTIBLE
        assert p.initial_state(1) == INFECTED
        assert p.initial_state(2) == RECOVERED

    def test_bad_input_symbol(self):
        with pytest.raises(ValueError):
            SIREpidemic().initial_state(3)

    def test_output_is_the_compartment(self):
        p = SIREpidemic()
        for state in (SUSCEPTIBLE, INFECTED, RECOVERED):
            assert p.output(state) == state

    def test_registered(self):
        entry = registry.get("epidemic-sir")
        assert isinstance(entry.factory(), SIREpidemic)
        assert entry.truth is None


class TestFluidOracle:
    def test_no_infection_is_stationary(self):
        assert sir_fluid_endpoint(0.8, 0.0, 0.2) == (0.8, 0.0, 0.2)

    def test_no_recovered_means_everyone_infected(self):
        assert sir_fluid_endpoint(0.9, 0.1, 0.0) == (0.0, 1.0, 0.0)

    def test_endpoint_preserves_the_invariant(self):
        s0, i0, r0 = 0.7, 0.1, 0.2
        s, i, r = sir_fluid_endpoint(s0, i0, r0)
        assert i == 0.0
        assert s + r == pytest.approx(1.0)
        assert s * r == pytest.approx(s0 * r0)

    def test_susceptible_takes_the_smaller_root(self):
        s, _, r = sir_fluid_endpoint(0.7, 0.1, 0.2)
        assert s < r

    def test_symmetric_start_splits_evenly(self):
        # s0 = r0 = 1/2 - eps pushes c toward 1/4, where both roots
        # coincide at 1/2.
        s, i, r = sir_fluid_endpoint(0.5, 0.0001, 0.4999)
        assert s == pytest.approx(0.5, abs=0.02)
        assert r == pytest.approx(0.5, abs=0.02)

    def test_rejects_bad_sum(self):
        with pytest.raises(ValueError):
            sir_fluid_endpoint(0.5, 0.5, 0.5)

    def test_rejects_negative_fraction(self):
        with pytest.raises(ValueError):
            sir_fluid_endpoint(1.1, -0.1, 0.0)


class TestDiscreteRun:
    def test_small_population_reaches_an_absorbing_split(self):
        # Discrete sanity: the chain can only stop once no infected
        # agents remain (or no susceptible+recovered pressure is left);
        # run a small population to silence and check the endpoint shape.
        sim = simulate_counts(SIREpidemic(), {0: 14, 1: 2, 2: 4}, seed=7)
        for _ in range(20_000):
            sim.step()
        counts = Counter(sim.states)
        assert sum(counts.values()) == 20
        # One-way SIR absorbs exactly when I is extinct: infection and
        # recovery both need an infected agent in the pair.
        assert counts.get(INFECTED, 0) == 0
        assert counts.get(SUSCEPTIBLE, 0) + counts.get(RECOVERED, 0) == 20

    def test_conserved_quantity_shadows_the_fluid(self):
        # The fluid's s*r invariant is not exact in the discrete chain,
        # but the endpoint must still satisfy s + r = 1 with r grown
        # from its seed.
        sim = simulate_counts(SIREpidemic(), {0: 30, 1: 5, 2: 5}, seed=11)
        for _ in range(50_000):
            sim.step()
        counts = Counter(sim.states)
        assert counts.get(INFECTED, 0) == 0
        assert counts.get(RECOVERED, 0) >= 5
