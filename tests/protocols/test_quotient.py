"""Tests for the floor(m/d) protocol (paper Sect. 3.4)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.conventions import IntegerOutput, ScalarIntegerOutput
from repro.protocols.quotient import QuotientProtocol, QuotientRemainderProtocol
from repro.sim.engine import simulate_counts
from repro.sim.schedulers import GreedyChangeScheduler
from repro.core.population import complete_population
from repro.core.semantics import is_silent


def run_to_fixpoint(protocol, ones, zeros, seed):
    """Run with a greedy scheduler until no state-changing pair remains
    among token holders (quotient protocols are eventually quiescent up to
    no-ops)."""
    sim = simulate_counts(protocol, {0: zeros, 1: ones}, seed=seed)
    sim.scheduler = GreedyChangeScheduler(
        complete_population(sim.n), protocol)
    # The greedy scheduler reaches the fixpoint in few productive steps.
    sim.run_until(lambda s: is_silent(protocol, s.multiset()),
                  max_steps=200_000, check_every=sim.n)
    return sim


class TestPaperDefinition:
    def test_paper_rules_for_d3(self):
        p = QuotientProtocol(3)
        assert p.delta((1, 0), (1, 0)) == ((2, 0), (0, 0))
        assert p.delta((2, 0), (1, 0)) == ((0, 0), (0, 1))
        assert p.delta((2, 0), (2, 0)) == ((1, 0), (0, 1))
        # "All other transitions leave the pair unchanged."
        assert p.delta((2, 0), (0, 0)) == ((2, 0), (0, 0))
        assert p.delta((0, 1), (1, 0)) == ((0, 1), (1, 0))
        assert p.delta((1, 0), (0, 1)) == ((1, 0), (0, 1))

    def test_bad_divisor(self):
        with pytest.raises(ValueError):
            QuotientProtocol(1)

    def test_io_maps(self):
        p = QuotientProtocol(3)
        assert p.initial_state(1) == (1, 0)
        assert p.initial_state(0) == (0, 0)
        assert p.output((2, 0)) == 0
        assert p.output((0, 1)) == 1


class TestInvariant:
    @given(st.integers(0, 12), st.integers(2, 5), st.integers(0, 200))
    def test_m_equals_r_plus_d_b(self, ones, d, seed):
        """The paper's induction invariant: m = R + d*B in every reachable
        configuration."""
        p = QuotientProtocol(d)
        zeros = max(2, 14 - ones)
        sim = simulate_counts(p, {0: zeros, 1: ones}, seed=seed)
        for _ in range(300):
            sim.step()
        r = sum(state[0] for state in sim.states)
        b = sum(state[1] for state in sim.states)
        assert ones == r + d * b


class TestComputesQuotient:
    @pytest.mark.parametrize("d", [2, 3, 4])
    @pytest.mark.parametrize("ones", [0, 1, 5, 7, 11])
    def test_quotient_value(self, d, ones, seed):
        p = QuotientProtocol(d)
        sim = run_to_fixpoint(p, ones, max(2, 14 - ones), seed)
        decoded = ScalarIntegerOutput().decode(sim.outputs())
        assert decoded == ones // d

    @pytest.mark.parametrize("ones", [0, 4, 8, 9])
    def test_quotient_and_remainder(self, ones, seed):
        """With the identity output map the protocol computes the ordered
        pair (m mod 3, floor(m/3)) as the paper remarks."""
        p = QuotientRemainderProtocol(3)
        sim = run_to_fixpoint(p, ones, max(2, 12 - ones), seed)
        remainder, quotient = IntegerOutput(2).decode(sim.outputs())
        assert (remainder, quotient) == (ones % 3, ones // 3)

    def test_random_scheduler_also_converges(self, seed):
        p = QuotientProtocol(3)
        sim = simulate_counts(p, {0: 6, 1: 7}, seed=seed)
        sim.run_until(lambda s: is_silent(p, s.multiset()),
                      max_steps=500_000, check_every=100)
        assert ScalarIntegerOutput().decode(sim.outputs()) == 7 // 3
