"""Tests for crash-fault injection (Sect. 8 discussion)."""

import pytest

from repro.protocols.counting import Epidemic, count_to_five
from repro.protocols.threshold import ThresholdProtocol
from repro.sim.faults import CrashySimulation
from repro.util.rng import spawn_seeds


class TestMechanics:
    def test_crash_removes_agent(self, seed):
        sim = CrashySimulation(Epidemic(), [1, 0, 0, 0], seed=seed)
        sim.crash(2)
        assert sim.n_alive == 3
        assert 2 in sim.crashed

    def test_crash_idempotent(self, seed):
        sim = CrashySimulation(Epidemic(), [1, 0, 0, 0], seed=seed)
        sim.crash(2)
        sim.crash(2)
        assert sim.n_alive == 3

    def test_cannot_crash_below_two(self, seed):
        sim = CrashySimulation(Epidemic(), [1, 0, 0], seed=seed)
        sim.crash(0)
        with pytest.raises(RuntimeError):
            sim.crash(1)

    def test_crashed_agents_never_interact(self, seed):
        sim = CrashySimulation(Epidemic(), [1, 0, 0, 0, 0, 0], seed=seed)
        sim.crash(0)  # the only infected agent dies
        frozen_state = sim.states[0]
        sim.run(5000)
        assert sim.states[0] == frozen_state
        # Nobody else could ever catch the bit.
        assert sim.unanimous_surviving_output() == 0

    def test_crash_random_reports_victims(self, seed):
        sim = CrashySimulation(Epidemic(), [0] * 8, seed=seed)
        victims = sim.crash_random(3)
        assert len(victims) == 3
        assert sim.n_alive == 5

    def test_schedule_must_be_future(self, seed):
        sim = CrashySimulation(Epidemic(), [0] * 6, seed=seed)
        sim.run(10)
        with pytest.raises(ValueError):
            sim.run_with_crashes([5], total_steps=100)


class TestRobustness:
    """The paper's observation: the epidemic survives crashes among the
    uninfected; token-holder crashes can change the answer."""

    def test_epidemic_survives_follower_crashes(self, seed):
        for s in spawn_seeds(seed, 10):
            sim = CrashySimulation(Epidemic(), [1] + [0] * 19, seed=s)
            # Crash five agents that are currently uninfected.
            sim.run(5)
            uninfected = [a for a in sim.alive if sim.states[a] == 0][:5]
            for victim in uninfected:
                sim.crash(victim)
            sim.run(20_000)
            assert sim.unanimous_surviving_output() == 1

    def test_count_to_five_breaks_when_token_holder_dies(self, seed):
        """Crashing the agent holding all tokens silently flips the
        survivors' answer — the fragility the paper warns about."""
        protocol = count_to_five()
        sim = CrashySimulation(protocol, [1, 1, 1, 1, 0, 0, 0, 0], seed=seed)
        # Consolidate all four tokens onto one agent, then kill it.
        sim.run_until_tokens = None
        for _ in range(100_000):
            sim.step()
            holders = [a for a in sim.alive if sim.states[a] == 4]
            if holders:
                sim.crash(holders[0])
                break
        else:
            pytest.skip("tokens never consolidated")
        sim.run(20_000)
        # Survivors now hold zero tokens: the population can never answer
        # "yes" even if more 1-inputs arrive conceptually.
        assert all(sim.states[a] == 0 for a in sim.alive)

    def test_leaderless_threshold_survives_nonleader_crashes(self, seed):
        """Crashing agents with zero count after convergence does not
        disturb the verdict."""
        protocol = ThresholdProtocol({"a": 1, "b": -1}, c=1)
        inputs = ["b"] * 8 + ["a"] * 4
        sim = CrashySimulation(protocol, inputs, seed=seed)
        sim.run(30_000)
        # Crash three non-leader, zero-count agents.
        victims = [a for a in sim.alive
                   if sim.states[a][0] == 0 and sim.states[a][2] == 0][:3]
        for victim in victims:
            sim.crash(victim)
        sim.run(30_000)
        assert sim.unanimous_surviving_output() == 1  # 4 - 8 < 1
