"""Tests for fault injection (Sect. 8 discussion)."""

import pytest

from repro.protocols.counting import Epidemic, count_to_five
from repro.protocols.threshold import ThresholdProtocol
from repro.sim.engine import Simulation, simulate_counts
from repro.sim.faults import (
    CorruptAt,
    CorruptionRate,
    CrashAt,
    CrashRate,
    CrashySimulation,
    FaultModel,
    FaultPlan,
    OmissionRate,
    OmitAt,
    TargetedCrash,
    reset_corruptor,
)
from repro.sim.engine import SimulationHalted
from repro.sim.multiset_engine import MultisetSimulation
from repro.util.rng import spawn_seeds

# CrashySimulation is exercised deliberately throughout this module; its
# DeprecationWarning is pinned explicitly by TestDeprecation below.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


class TestMechanics:
    def test_crash_removes_agent(self, seed):
        sim = CrashySimulation(Epidemic(), [1, 0, 0, 0], seed=seed)
        sim.crash(2)
        assert sim.n_alive == 3
        assert 2 in sim.crashed

    def test_crash_idempotent(self, seed):
        sim = CrashySimulation(Epidemic(), [1, 0, 0, 0], seed=seed)
        sim.crash(2)
        sim.crash(2)
        assert sim.n_alive == 3

    def test_cannot_crash_below_two(self, seed):
        sim = CrashySimulation(Epidemic(), [1, 0, 0], seed=seed)
        sim.crash(0)
        with pytest.raises(RuntimeError):
            sim.crash(1)

    def test_crashed_agents_never_interact(self, seed):
        sim = CrashySimulation(Epidemic(), [1, 0, 0, 0, 0, 0], seed=seed)
        sim.crash(0)  # the only infected agent dies
        frozen_state = sim.states[0]
        sim.run(5000)
        assert sim.states[0] == frozen_state
        # Nobody else could ever catch the bit.
        assert sim.unanimous_surviving_output() == 0

    def test_crash_random_reports_victims(self, seed):
        sim = CrashySimulation(Epidemic(), [0] * 8, seed=seed)
        victims = sim.crash_random(3)
        assert len(victims) == 3
        assert sim.n_alive == 5

    def test_schedule_must_be_future(self, seed):
        sim = CrashySimulation(Epidemic(), [0] * 6, seed=seed)
        sim.run(10)
        with pytest.raises(ValueError):
            sim.run_with_crashes([5], total_steps=100)


class TestRobustness:
    """The paper's observation: the epidemic survives crashes among the
    uninfected; token-holder crashes can change the answer."""

    def test_epidemic_survives_follower_crashes(self, seed):
        for s in spawn_seeds(seed, 10):
            sim = CrashySimulation(Epidemic(), [1] + [0] * 19, seed=s)
            # Crash five agents that are currently uninfected.
            sim.run(5)
            uninfected = [a for a in sim.alive if sim.states[a] == 0][:5]
            for victim in uninfected:
                sim.crash(victim)
            sim.run(20_000)
            assert sim.unanimous_surviving_output() == 1

    def test_count_to_five_breaks_when_token_holder_dies(self, seed):
        """Crashing the agent holding all tokens silently flips the
        survivors' answer — the fragility the paper warns about."""
        protocol = count_to_five()
        sim = CrashySimulation(protocol, [1, 1, 1, 1, 0, 0, 0, 0], seed=seed)
        # Consolidate all four tokens onto one agent, then kill it.
        sim.run_until_tokens = None
        for _ in range(100_000):
            sim.step()
            holders = [a for a in sim.alive if sim.states[a] == 4]
            if holders:
                sim.crash(holders[0])
                break
        else:
            pytest.skip("tokens never consolidated")
        sim.run(20_000)
        # Survivors now hold zero tokens: the population can never answer
        # "yes" even if more 1-inputs arrive conceptually.
        assert all(sim.states[a] == 0 for a in sim.alive)

    def test_leaderless_threshold_survives_nonleader_crashes(self, seed):
        """Crashing agents with zero count after convergence does not
        disturb the verdict."""
        protocol = ThresholdProtocol({"a": 1, "b": -1}, c=1)
        inputs = ["b"] * 8 + ["a"] * 4
        sim = CrashySimulation(protocol, inputs, seed=seed)
        sim.run(30_000)
        # Crash three non-leader, zero-count agents.
        victims = [a for a in sim.alive
                   if sim.states[a][0] == 0 and sim.states[a][2] == 0][:3]
        for victim in victims:
            sim.crash(victim)
        sim.run(30_000)
        assert sim.unanimous_surviving_output() == 1  # 4 - 8 < 1


class TestFaultPlan:
    def test_crash_at_fires_once(self, seed):
        plan = FaultPlan(CrashAt(10, 3), seed=seed)
        sim = simulate_counts(Epidemic(), {1: 2, 0: 10}, seed=seed,
                              faults=plan)
        sim.run(200)
        assert len(sim.crashed) == 3
        assert plan.crashes == 3
        assert sim.n_alive == 9

    def test_omit_at_drops_exact_encounter(self, seed):
        # Two agents: every encounter infects.  Dropping encounter 1
        # leaves the states untouched while the clock still ticks.
        plan = FaultPlan(OmitAt([1]), seed=seed)
        sim = Simulation(Epidemic(), [1, 0], seed=seed, faults=plan)
        sim.run(1)
        assert sim.states == [1, 0]
        assert sim.interactions == 1
        assert plan.omissions == 1
        sim.run(1)
        assert sim.states == [1, 1]

    def test_omission_rate_one_freezes_states(self, seed):
        plan = FaultPlan(OmissionRate(1.0), seed=seed)
        sim = simulate_counts(Epidemic(), {1: 1, 0: 7}, seed=seed,
                              faults=plan)
        before = list(sim.states)
        sim.run(500)
        assert sim.states == before
        assert sim.interactions == 500
        assert plan.omissions == 500

    def test_corrupt_at_with_custom_corruptor(self, seed):
        # Glitch one all-zero agent to state 1: the epidemic then spreads
        # the corrupted bit to the whole population.
        plan = FaultPlan(CorruptAt(5, corruptor=lambda s, p, r: 1),
                         seed=seed)
        sim = simulate_counts(Epidemic(), {0: 10}, seed=seed, faults=plan)
        sim.run(2000)
        assert plan.corruptions == 1
        assert sim.unanimous_surviving_output() == 1

    def test_reset_corruptor_reinitializes(self, seed):
        import random
        state = reset_corruptor(4, count_to_five(), random.Random(seed))
        assert state in (0, 1)

    def test_targeted_crash_honours_after_step(self, seed):
        plan = FaultPlan(TargetedCrash(lambda s: s == 0, 2, after_step=50),
                         seed=seed)
        sim = simulate_counts(Epidemic(), {0: 8}, seed=seed, faults=plan)
        sim.run(49)
        assert not sim.crashed
        sim.run(10)
        assert len(sim.crashed) == 2

    def test_crash_rate_never_empties_population(self, seed):
        plan = FaultPlan(CrashRate(1.0), seed=seed)
        sim = simulate_counts(Epidemic(), {1: 1, 0: 9}, seed=seed,
                              faults=plan)
        sim.run(500)
        assert sim.n_alive == 2

    def test_plan_counters_in_repr(self, seed):
        plan = FaultPlan([CrashAt(0, 1), OmissionRate(1.0)], seed=seed)
        simulate_counts(Epidemic(), {0: 6}, seed=seed, faults=plan).run(9)
        assert "crashes=1" in repr(plan)
        # Encounters hitting the dead agent are inert before the omission
        # layer is consulted, so omissions counts only live-live drops.
        assert f"omissions={plan.omissions}" in repr(plan)
        assert 0 < plan.omissions <= 9

    def test_plan_rejects_second_simulation(self, seed):
        plan = FaultPlan(OmissionRate(0.5), seed=seed)
        simulate_counts(Epidemic(), {0: 4}, seed=seed, faults=plan)
        with pytest.raises(ValueError, match="already attached"):
            simulate_counts(Epidemic(), {0: 4}, seed=seed, faults=plan)

    def test_plan_rejects_non_models(self):
        with pytest.raises(TypeError):
            FaultPlan([OmissionRate(0.5), "not a model"])

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CrashAt(-1)
        with pytest.raises(ValueError):
            CrashAt(0, 0)
        with pytest.raises(ValueError):
            CrashRate(1.5)
        with pytest.raises(ValueError):
            CorruptAt(0, 0)
        with pytest.raises(ValueError):
            CorruptionRate(-0.1)
        with pytest.raises(ValueError):
            OmitAt([0])
        with pytest.raises(ValueError):
            OmissionRate(2.0)

    def test_custom_model_hooks(self, seed):
        class EveryOther(FaultModel):
            def omits_encounter(self, sim, plan):
                return sim.interactions % 2 == 0

        plan = FaultPlan(EveryOther(), seed=seed)
        sim = simulate_counts(Epidemic(), {1: 1, 0: 5}, seed=seed,
                              faults=plan)
        sim.run(100)
        assert plan.omissions == 50


class TestFaultPlanMultiset:
    def test_crash_at_on_multiset_engine(self, seed):
        plan = FaultPlan(CrashAt(10, 3), seed=seed)
        sim = MultisetSimulation(Epidemic(), {1: 2, 0: 10}, seed=seed,
                                 faults=plan)
        sim.run(200)
        assert sim.dead == 3
        assert sim.n_alive == 9
        assert sum(sim.crashed_counts.values()) == 3

    def test_targeted_crash_kills_lone_alert(self, seed):
        plan = FaultPlan(TargetedCrash(lambda s: s == 1, 1), seed=seed)
        sim = MultisetSimulation(Epidemic(), {1: 1, 0: 9}, seed=seed,
                                 faults=plan)
        sim.run(5000)
        # The only infected sensor died before spreading anything.
        assert sim.crashed_counts == {1: 1}
        assert sim.unanimous_surviving_output() == 0

    def test_dead_sensors_burn_clock_ticks(self, seed):
        plan = FaultPlan(CrashAt(0, 5), seed=seed)
        sim = MultisetSimulation(Epidemic(), {1: 3, 0: 9}, seed=seed,
                                 faults=plan)
        sim.run(300)
        assert sim.interactions == 300
        assert sim.n_alive == 7

    def test_corruption_rate_on_multiset_engine(self, seed):
        plan = FaultPlan(
            CorruptionRate(1.0, corruptor=lambda s, p, r: 1), seed=seed)
        sim = MultisetSimulation(Epidemic(), {0: 8}, seed=seed, faults=plan)
        sim.run(100)
        assert plan.corruptions == 100
        assert sim.unanimous_surviving_output() == 1


class TestAllOrNothingCrash:
    """crash_random validates the whole request before applying any of it."""

    def test_agent_engine_rejects_oversized_request(self, seed):
        sim = simulate_counts(Epidemic(), {0: 4}, seed=seed)
        with pytest.raises(RuntimeError):
            sim.crash_random(3)
        assert sim.crashed == set()
        assert sim.n_alive == 4

    def test_multiset_engine_rejects_oversized_request(self, seed):
        sim = MultisetSimulation(Epidemic(), {0: 4}, seed=seed)
        with pytest.raises(RuntimeError):
            sim.crash_random(3)
        assert sim.dead == 0
        assert sim.crashed_counts == {}

    def test_crashy_wrapper_rejects_oversized_request(self, seed):
        sim = CrashySimulation(Epidemic(), [0] * 4, seed=seed)
        with pytest.raises(RuntimeError):
            sim.crash_random(3)
        assert sim.alive == [0, 1, 2, 3]
        assert sim.n_alive == 4

    def test_exact_boundary_is_allowed(self, seed):
        sim = simulate_counts(Epidemic(), {0: 5}, seed=seed)
        assert len(sim.crash_random(3)) == 3
        assert sim.n_alive == 2

    def test_crash_refusal_names_the_invariant(self, seed):
        sim = simulate_counts(Epidemic(), {0: 3}, seed=seed)
        sim.crash(0)
        with pytest.raises(RuntimeError,
                           match="at least two live agents"):
            sim.crash(1)


class TestRunWithCrashesSchedule:
    def test_entry_at_current_index_fires(self, seed):
        sim = CrashySimulation(Epidemic(), [0] * 8, seed=seed)
        sim.run(10)
        sim.run_with_crashes([10], total_steps=20)
        assert len(sim.crashed) == 1
        assert sim.interactions == 20

    def test_duplicate_times_collapse_to_one_crash(self, seed):
        sim = CrashySimulation(Epidemic(), [0] * 8, seed=seed)
        sim.run_with_crashes([5, 5, 5], total_steps=50)
        assert len(sim.crashed) == 1

    def test_past_entry_raises_before_simulating(self, seed):
        sim = CrashySimulation(Epidemic(), [0] * 8, seed=seed)
        sim.run(10)
        with pytest.raises(ValueError):
            sim.run_with_crashes([5, 20], total_steps=100)
        assert sim.interactions == 10
        assert not sim.crashed


class TestDeprecation:
    @pytest.mark.filterwarnings("default::DeprecationWarning")
    def test_crashy_simulation_warns_toward_fault_plan(self, seed):
        with pytest.warns(DeprecationWarning, match="FaultPlan"):
            CrashySimulation(Epidemic(), [1, 0, 0], seed=seed)


class TestLoneSurvivor:
    def test_scheduler_halts_instead_of_crashing(self, seed):
        # crash() enforces the >= 2-survivors invariant, so reach the
        # degenerate state the way a buggy harness would: mutate the
        # bookkeeping directly.  The scheduler must raise the structured
        # SimulationHalted, not an IndexError from an empty draw.
        sim = CrashySimulation(Epidemic(), [1, 0, 0, 0], seed=seed)
        for agent in (1, 2, 3):
            sim.crashed.add(agent)
            sim.alive.remove(agent)
        with pytest.raises(SimulationHalted, match="1 live agent"):
            sim.run(1)
        assert sim.interactions == 0  # nothing was simulated

    def test_zero_survivors_also_halt(self, seed):
        sim = CrashySimulation(Epidemic(), [1, 0], seed=seed)
        sim.crashed.update({0, 1})
        sim.alive.clear()
        with pytest.raises(SimulationHalted, match="0 live agent"):
            sim.step()

    def test_two_survivors_keep_running(self, seed):
        sim = CrashySimulation(Epidemic(), [1, 0, 0, 0], seed=seed)
        sim.crash(1)
        sim.crash(2)
        sim.run(100)
        assert sim.interactions == 100
