"""Shared fixtures for the simulation-engine suites.

``kernel_backend`` parameterizes a test over every step-kernel backend
available on this installation (see :mod:`repro.sim.backends`): always
``numpy`` and ``python``, plus ``numba`` when the ``[perf]`` extra is
installed (the CI numba leg).  Threading it through the fingerprint and
scalar-twin suites makes every backend inherit the full behavioral
contract — bit identity for the batched engines, the statistical
contract for the ensemble — with zero per-backend test code.
"""

import pytest

from repro.sim.backends import available_backends


@pytest.fixture(params=available_backends())
def kernel_backend(request):
    """Each available step-kernel backend name, one parameterization each."""
    return request.param
