"""Tests for simulation checkpointing."""

from repro.core.population import line_population
from repro.protocols.counting import count_to_five
from repro.protocols.majority import majority_protocol
from repro.sim.engine import Simulation, simulate_counts
from repro.sim.schedulers import RoundRobinScheduler, ShuffledSweepScheduler


class TestSnapshotRestore:
    def test_restored_run_is_bit_identical(self, seed):
        sim = simulate_counts(majority_protocol(), {0: 5, 1: 7}, seed=seed)
        sim.run(500)
        snap = sim.snapshot()
        sim.run(1000)
        states_a = list(sim.states)
        clock_a = sim.interactions

        sim.restore(snap)
        assert sim.interactions == 500
        sim.run(1000)
        assert sim.states == states_a
        assert sim.interactions == clock_a

    def test_snapshot_is_isolated_from_later_steps(self, seed):
        sim = simulate_counts(count_to_five(), {1: 6, 0: 6}, seed=seed)
        snap = sim.snapshot()
        frozen = list(snap["states"])
        sim.run(2000)
        assert snap["states"] == frozen

    def test_branching_runs_diverge_only_via_rng(self, seed):
        """Restoring and reseeding gives a different but valid branch."""
        sim = simulate_counts(majority_protocol(), {0: 4, 1: 8}, seed=seed)
        sim.run(300)
        snap = sim.snapshot()

        sim.run(3000)
        branch_a = sim.multiset()

        sim.restore(snap)
        sim.rng.seed(12345)  # branch with fresh randomness
        sim.run(3000)
        branch_b = sim.multiset()

        # Both branches conserve the population and the count invariant.
        assert branch_a.total == branch_b.total == 12
        total = sum(s[2] for s in branch_a.elements())
        assert total == sum(s[2] for s in branch_b.elements())

    def test_stateful_scheduler_restored(self, seed):
        pop = line_population(6)
        sim = Simulation(count_to_five(), [1, 1, 1, 1, 1, 0],
                         population=pop,
                         scheduler=RoundRobinScheduler(pop), seed=seed)
        sim.run(7)
        snap = sim.snapshot()
        sim.run(13)
        after_a = list(sim.states)
        sim.restore(snap)
        sim.run(13)
        assert sim.states == after_a

    def test_shuffled_sweep_scheduler_restored(self, seed):
        pop = line_population(5)
        sim = Simulation(count_to_five(), [1, 1, 1, 0, 0],
                         population=pop,
                         scheduler=ShuffledSweepScheduler(pop), seed=seed)
        sim.run(3)  # mid-sweep: the scheduler queue is partially drained
        snap = sim.snapshot()
        sim.run(20)
        after_a = list(sim.states)
        sim.restore(snap)
        sim.run(20)
        assert sim.states == after_a

    def test_last_output_change_restored(self, seed):
        sim = simulate_counts(count_to_five(), {1: 6, 0: 2}, seed=seed)
        sim.run_until(lambda s: s.unanimous_output() == 1,
                      max_steps=100_000, check_every=10)
        snap = sim.snapshot()
        recorded = sim.last_output_change
        sim.run(500)
        sim.restore(snap)
        assert sim.last_output_change == recorded
