"""Tests for interaction schedulers."""

import random
from collections import Counter

import pytest

from repro.core.population import Population, complete_population, line_population
from repro.protocols.counting import Epidemic, count_to_five
from repro.sim.engine import Simulation
from repro.sim.schedulers import (
    GreedyChangeScheduler,
    RoundRobinScheduler,
    ShuffledSweepScheduler,
    UniformEdgeScheduler,
    UniformPairScheduler,
)


class TestUniformPair:
    def test_never_self_pair(self):
        sched = UniformPairScheduler(5)
        rng = random.Random(0)
        for _ in range(2000):
            i, j = sched.next_encounter([], rng)
            assert i != j
            assert 0 <= i < 5 and 0 <= j < 5

    def test_roughly_uniform(self):
        sched = UniformPairScheduler(4)
        rng = random.Random(1)
        counts = Counter(sched.next_encounter([], rng) for _ in range(24_000))
        assert len(counts) == 12
        for pair_count in counts.values():
            assert abs(pair_count - 2000) < 300

    def test_small_population_rejected(self):
        with pytest.raises(ValueError):
            UniformPairScheduler(1)


class TestUniformEdge:
    def test_only_graph_edges(self):
        pop = line_population(4)
        sched = UniformEdgeScheduler(pop)
        rng = random.Random(0)
        for _ in range(500):
            edge = sched.next_encounter([], rng)
            assert edge in pop.edges


class TestRoundRobin:
    def test_cycles_through_all_edges(self):
        pop = line_population(3)
        sched = RoundRobinScheduler(pop)
        rng = random.Random(0)
        seen = [sched.next_encounter([], rng) for _ in range(len(pop.edges))]
        assert sorted(seen) == sorted(pop.edges)
        # Next round repeats the same order.
        again = [sched.next_encounter([], rng) for _ in range(len(pop.edges))]
        assert again == seen

    def test_drives_computation(self):
        sim = Simulation(count_to_five(), [1] * 5 + [0] * 3,
                         scheduler=RoundRobinScheduler(complete_population(8)),
                         seed=0)
        sim.run_until(lambda s: s.unanimous_output() == 1,
                      max_steps=20_000, check_every=10)
        assert sim.unanimous_output() == 1


class TestShuffledSweep:
    def test_every_edge_once_per_round(self):
        pop = line_population(4)
        sched = ShuffledSweepScheduler(pop)
        rng = random.Random(2)
        first_round = [sched.next_encounter([], rng)
                       for _ in range(len(pop.edges))]
        assert sorted(first_round) == sorted(pop.edges)

    def test_order_varies_between_rounds(self):
        pop = complete_population(6)
        sched = ShuffledSweepScheduler(pop)
        rng = random.Random(3)
        size = len(pop.edges)
        round1 = [sched.next_encounter([], rng) for _ in range(size)]
        round2 = [sched.next_encounter([], rng) for _ in range(size)]
        assert round1 != round2
        assert sorted(round1) == sorted(round2)


class TestGreedy:
    def test_prefers_state_changing_pairs(self):
        p = Epidemic()
        pop = complete_population(4)
        sched = GreedyChangeScheduler(pop, p)
        rng = random.Random(0)
        states = [1, 0, 0, 0]
        i, j = sched.next_encounter(states, rng)
        assert p.delta(states[i], states[j]) != (states[i], states[j])

    def test_falls_back_when_silent(self):
        p = Epidemic()
        pop = complete_population(3)
        sched = GreedyChangeScheduler(pop, p)
        rng = random.Random(0)
        edge = sched.next_encounter([1, 1, 1], rng)
        assert edge in pop.edges

    def test_epidemic_in_linear_steps(self):
        p = Epidemic()
        n = 40
        sim = Simulation(p, [1] + [0] * (n - 1),
                         scheduler=GreedyChangeScheduler(complete_population(n), p),
                         seed=0)
        sim.run(n - 1)
        assert sim.unanimous_output() == 1
