"""Cross-validation of the fluid engine against the ensemble engine.

The fluid engine is deterministic, so the PR-5 two-sample KS machinery
does not apply verbatim; the statistical contract here is the
Bournez et al. convergence theorem run backwards:

* **fixed-horizon agreement** — at every overlapping n (10^3..10^5) the
  ensemble's mean output fraction after a fixed number of interactions
  must sit within 4 standard errors (plus one-agent discretization
  slack) of the fluid trajectory at the same fluid time;
* **one-sample KS against the CLT law** — the fluid engine's finite-n
  correction predicts the *distribution* of a fraction at time tau:
  Normal(fluid mean, sqrt(Sigma_ii / n)).  A KS test of the ensemble
  sample against that predicted law validates mean and band at once
  (same p > 1e-3 convention as the ensemble suite's ``ks_2samp`` tests);
* **hitting-time agreement** — the fluid silence time for leader
  election, n(n-1), must agree with the ensemble's sampled mean within
  4 standard errors at n = 10^3 (hitting times are heavy-tailed, so
  this bound is loose by construction — the fixed-horizon tests above
  are the sharp ones);
* **finite-n divergence** — below n ~ 10^2 the limit visibly breaks:
  the discrete expectation is (n-1)^2 while the fluid predicts n(n-1),
  a relative gap of exactly 1/(n-1) that the ensemble resolves at many
  sigma for small n and that vanishes at n = 10^3.
"""

import numpy as np
import pytest

from repro.protocols.leader import LeaderElection
from repro.protocols.majority import majority_protocol
from repro.protocols.sir import SIREpidemic
from repro.protocols.counting import Epidemic
from repro.sim.ensemble import (
    EnsembleFaults,
    EnsembleMultisetSimulation,
    run_ensemble_until_silent,
)
from repro.sim.fluid import FluidSimulation, run_fluid_until_silent

SEED = 20040725


def _ensemble_fractions(protocol, counts, *, trials, steps, symbol, seed):
    """Per-trial fraction of agents outputting ``symbol`` after a fixed
    number of interactions."""
    n = sum(counts.values())
    ens = EnsembleMultisetSimulation(protocol, counts, trials=trials,
                                     seed=seed)
    ens.run(steps)
    return np.array([ens.output_counts(t).get(symbol, 0) / n
                     for t in range(trials)])


def _fluid_fraction(protocol, counts, *, tau, symbol, clt=False):
    fl = FluidSimulation(protocol, counts, clt=clt, record=False)
    fl.advance(tau)
    n = sum(counts.values())
    mass = fl.output_counts().get(symbol, 0.0) / n
    if not clt:
        return mass
    oid = fl.compiled.output_symbols.index(symbol)
    out_ids = np.asarray(fl.compiled.output_ids)
    ones = (out_ids == oid).astype(float)
    variance = float(ones @ fl.cov @ ones)
    return mass, float(np.sqrt(max(variance, 0.0) / n))


#: (protocol factory, input fractions, output symbol, fluid horizon).
WORKLOADS = (
    ("leader-election", LeaderElection, {1: 1.0}, 1, 1.0),
    ("majority", majority_protocol, {1: 0.6, 0: 0.4}, 1, 1.0),
    ("epidemic-sir", SIREpidemic, {0: 0.7, 1: 0.1, 2: 0.2}, "I", 1.0),
)

#: Trials per population size (larger n costs more per interaction, but
#: its CLT scatter is also 1/sqrt(n) smaller, so fewer trials suffice).
TRIALS = {1_000: 64, 10_000: 64, 100_000: 24}


class TestFixedHorizonAgreement:
    @pytest.mark.parametrize("n", [1_000, 10_000, 100_000])
    @pytest.mark.parametrize(
        "name,factory,fractions,symbol,tau",
        WORKLOADS, ids=[w[0] for w in WORKLOADS])
    def test_mean_fraction_matches_fluid(self, name, factory, fractions,
                                         symbol, tau, n):
        counts = {sym: int(round(frac * n))
                  for sym, frac in fractions.items()}
        trials = TRIALS[n]
        sample = _ensemble_fractions(
            factory(), counts, trials=trials, steps=int(tau * n),
            symbol=symbol, seed=SEED + n)
        fluid = _fluid_fraction(factory(), counts, tau=tau, symbol=symbol)
        stderr = sample.std(ddof=1) / np.sqrt(trials)
        # 4 standard errors of Monte-Carlo scatter plus one agent of
        # discretization slack (the fluid limit is exact only as
        # n -> infinity; at these n the O(1/n) bias is below one agent).
        assert abs(sample.mean() - fluid) <= 4 * stderr + 2.0 / n, (
            f"{name} n={n}: ensemble {sample.mean():.6f} vs fluid "
            f"{fluid:.6f} (stderr {stderr:.2g})")


class TestDistributionAgreement:
    def test_epidemic_sample_matches_clt_law(self):
        # The CLT correction predicts the full finite-n distribution of
        # the infected fraction; KS the ensemble sample against it.
        from scipy.stats import kstest

        n, trials, tau = 1_000, 96, 1.0
        counts = {1: 10, 0: n - 10}
        sample = _ensemble_fractions(Epidemic(), counts, trials=trials,
                                     steps=int(tau * n), symbol=1,
                                     seed=SEED)
        mean, band = _fluid_fraction(Epidemic(), counts, tau=tau, symbol=1,
                                     clt=True)
        assert band > 0
        result = kstest(sample, "norm", args=(mean, band))
        assert result.pvalue > 1e-3, (
            f"ensemble sample (mean {sample.mean():.5f}, "
            f"std {sample.std():.5f}) rejects CLT law "
            f"N({mean:.5f}, {band:.5f}): p={result.pvalue:.2g}")

    def test_clt_band_matches_ensemble_scatter(self):
        n, trials, tau = 1_000, 96, 1.0
        counts = {1: 10, 0: n - 10}
        sample = _ensemble_fractions(Epidemic(), counts, trials=trials,
                                     steps=int(tau * n), symbol=1,
                                     seed=SEED + 1)
        _, band = _fluid_fraction(Epidemic(), counts, tau=tau, symbol=1,
                                  clt=True)
        # Sample std of 96 trials has ~7% relative noise; a [0.7, 1.4]
        # bracket is ~5 sigma wide while still catching any wrong
        # scaling of the diffusion term (which would be off by sqrt(2)
        # or more).
        ratio = sample.std(ddof=1) / band
        assert 0.7 <= ratio <= 1.4, ratio


class TestHittingTimeAgreement:
    def test_leader_silence_time_at_1e3(self):
        n, trials = 1_000, 32
        ens = EnsembleMultisetSimulation(LeaderElection(), {1: n},
                                         trials=trials, seed=SEED)
        results = run_ensemble_until_silent(ens, max_steps=20 * n * n)
        assert all(r.stopped for r in results)
        times = np.array([r.converged_at for r in results], dtype=float)
        fl = FluidSimulation(LeaderElection(), {1: n}, record=False)
        fluid = run_fluid_until_silent(fl, max_steps=20 * n * n).converged_at
        stderr = times.std(ddof=1) / np.sqrt(trials)
        assert abs(times.mean() - fluid) <= 4 * stderr, (
            f"ensemble mean {times.mean():.0f} vs fluid {fluid} "
            f"(stderr {stderr:.0f})")


class TestFiniteNDivergence:
    def test_fluid_overestimates_small_populations(self):
        # At n = 6 the fluid prediction n(n-1) = 30 exceeds the exact
        # discrete expectation (n-1)^2 = 25 by 20% — the ensemble
        # resolves that gap at many sigma.  This is the departure the
        # EXPERIMENTS.md E20 study maps out.
        n, trials = 6, 1024
        ens = EnsembleMultisetSimulation(LeaderElection(), {1: n},
                                         trials=trials, seed=SEED)
        results = run_ensemble_until_silent(ens, max_steps=100_000)
        times = np.array([r.converged_at for r in results], dtype=float)
        fl = FluidSimulation(LeaderElection(), {1: n}, record=False)
        fluid = run_fluid_until_silent(fl, max_steps=100_000).converged_at
        stderr = times.std(ddof=1) / np.sqrt(trials)
        assert times.mean() == pytest.approx((n - 1) ** 2, rel=0.1)
        assert fluid - times.mean() > 3 * stderr
        # ... and the relative gap is the predicted 1/(n-1).
        assert (fluid - times.mean()) / times.mean() == pytest.approx(
            1.0 / (n - 1), rel=0.35)

    def test_relative_gap_vanishes_with_n(self):
        # The fluid hitting time is n(n-1) at every n; against the exact
        # discrete expectation (n-1)^2 the relative error is 1/(n-1):
        # 20% at the n=6 of the divergence test above, 0.1% at n=1000.
        for n in (6, 1_000):
            fl = FluidSimulation(LeaderElection(), {1: n}, record=False)
            fluid = run_fluid_until_silent(fl, max_steps=20 * n * n)
            gap = (fluid.converged_at - (n - 1) ** 2) / (n - 1) ** 2
            assert gap == pytest.approx(1.0 / (n - 1), rel=0.05)


class TestFaultedCrossValidation:
    """Fault-perturbed drift vs faulted ensemble runs (ISSUE-8).

    Same contract shape as the fault-free suites above, with the fault
    descriptor attached to both engines: fixed-horizon live/dead-mass
    agreement for crash and corruption at n = 10^3..10^5, and slowdown-
    *ratio* agreement for omission (absolute hitting times diverge in
    the last-agent tail, where the mean-field limit is known to break;
    the faulted/plain ratio cancels that tail and both engines must put
    it at 1 / (1 - r)).
    """

    #: Trials per population size (CLT scatter shrinks as 1/sqrt(n)).
    FAULT_TRIALS = {1_000: 48, 10_000: 24, 100_000: 8}

    @pytest.mark.parametrize("n", [1_000, 10_000, 100_000])
    def test_crash_rate_dead_and_live_mass(self, n):
        p, tau = 0.15, 1.0
        trials = self.FAULT_TRIALS[n]
        faults = EnsembleFaults("crash-rate", p)
        counts = {1: n // 100, 0: n - n // 100}
        ens = EnsembleMultisetSimulation(Epidemic(), counts, trials=trials,
                                         seed=SEED + n, faults=faults)
        ens.run(int(tau * n))
        fl = FluidSimulation(Epidemic(), counts, faults=faults)
        fl.advance(tau)
        dead = ens.dead / n
        stderr = dead.std(ddof=1) / np.sqrt(trials)
        assert abs(fl.dead_mass - dead.mean()) <= 4 * stderr + 2.0 / n, (
            f"n={n}: fluid dead mass {fl.dead_mass:.5f} vs ensemble "
            f"{dead.mean():.5f} (stderr {stderr:.2g})")
        live = ens.counts.mean(axis=0) / n
        gap = np.abs(fl.x[:fl.ode.k_live] - live).max()
        assert gap <= 0.03, (
            f"n={n}: live fractions fluid {fl.x[:fl.ode.k_live]} vs "
            f"ensemble {live}")

    def test_corruption_rate_live_fractions(self):
        n, trials, q = 1_000, 48, 0.05
        faults = EnsembleFaults("corruption-rate", q)
        counts = {1: 700, 0: 300}
        ens = EnsembleMultisetSimulation(majority_protocol(), counts,
                                         trials=trials, seed=SEED,
                                         faults=faults)
        ens.run(50 * n)
        fl = FluidSimulation(majority_protocol(), counts, faults=faults)
        fl.advance(50.0)
        live = ens.counts.mean(axis=0) / n
        gap = np.abs(fl.x[:fl.ode.k_live] - live).max()
        assert gap <= 0.03, (
            f"live fractions fluid {fl.x[:fl.ode.k_live]} vs ensemble "
            f"{live}")

    def test_omission_slowdown_ratio(self):
        n, trials, r = 1_000, 32, 0.5
        counts = {1: 1, 0: n - 1}
        budget = 5_000_000

        def ensemble_mean_silence(faults):
            ens = EnsembleMultisetSimulation(Epidemic(), counts,
                                             trials=trials, seed=SEED,
                                             faults=faults)
            results = run_ensemble_until_silent(ens, max_steps=budget)
            assert all(res.stopped for res in results)
            return np.mean([res.converged_at for res in results])

        def fluid_silence(faults):
            fl = FluidSimulation(Epidemic(), counts, faults=faults)
            result = run_fluid_until_silent(fl, max_steps=budget)
            assert result.stopped
            return result.converged_at

        fluid_ratio = (fluid_silence(EnsembleFaults("omission-rate", r))
                       / fluid_silence(None))
        ens_ratio = (ensemble_mean_silence(EnsembleFaults("omission-rate", r))
                     / ensemble_mean_silence(None))
        expected = 1.0 / (1.0 - r)
        # The fluid dilation is exact; the ensemble's carries
        # Monte-Carlo scatter from two 32-trial means.
        assert fluid_ratio == pytest.approx(expected, abs=0.05)
        assert ens_ratio == pytest.approx(expected, abs=0.3)
        assert fluid_ratio == pytest.approx(ens_ratio, abs=0.3)
