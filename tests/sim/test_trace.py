"""Tests for trace recording."""

import pytest

from repro.protocols.counting import Epidemic, count_to_five
from repro.sim.engine import simulate_counts
from repro.sim.multiset_engine import MultisetSimulation
from repro.sim.trace import Trace, TracePoint, TraceRecorder, state_histogram


class TestTraceRecorder:
    def test_samples_at_period(self, seed):
        sim = simulate_counts(Epidemic(), {1: 1, 0: 9}, seed=seed)
        recorder = TraceRecorder(sim, period=50)
        trace = recorder.run(500)
        assert len(trace) == 11  # initial sample + 10 periods
        assert trace.points[0].interactions == 0
        assert trace.points[-1].interactions == 500

    def test_bad_period(self, seed):
        sim = simulate_counts(Epidemic(), {1: 1, 0: 3}, seed=seed)
        with pytest.raises(ValueError):
            TraceRecorder(sim, period=0)

    def test_epidemic_counts_monotone(self, seed):
        sim = simulate_counts(Epidemic(), {1: 1, 0: 19}, seed=seed)
        trace = TraceRecorder(sim, period=25).run(4000)
        infected = [count for _, count in trace.series(1)]
        assert infected[0] == 1
        assert all(b >= a for a, b in zip(infected, infected[1:]))
        assert infected[-1] == 20

    def test_run_until(self, seed):
        sim = simulate_counts(Epidemic(), {1: 1, 0: 9}, seed=seed)
        recorder = TraceRecorder(sim, period=20)
        trace = recorder.run_until(
            lambda s: s.unanimous_output() == 1, max_steps=100_000)
        assert trace.final().counts == {1: 10}

    def test_custom_histogram(self, seed):
        sim = simulate_counts(count_to_five(), {1: 3, 0: 3}, seed=seed)
        recorder = TraceRecorder(sim, period=10, histogram=state_histogram)
        trace = recorder.run(200)
        # Token conservation visible in every state histogram.
        for point in trace.points:
            tokens = sum(state * count for state, count in point.counts.items())
            assert tokens == 3

    def test_works_with_multiset_engine(self, seed):
        sim = MultisetSimulation(Epidemic(), {1: 1, 0: 99}, seed=seed)
        trace = TraceRecorder(sim, period=100).run(2000)
        assert len(trace) == 21


class TestTrace:
    def make_trace(self) -> Trace:
        return Trace([
            TracePoint(0, {0: 5, 1: 1}),
            TracePoint(100, {0: 3, 1: 3}),
            TracePoint(200, {1: 6}),
        ])

    def test_keys_union(self):
        assert set(self.make_trace().keys()) == {0, 1}

    def test_series_fills_zeros(self):
        trace = self.make_trace()
        assert trace.series(0) == [(0, 5), (100, 3), (200, 0)]

    def test_first_time(self):
        trace = self.make_trace()
        assert trace.first_time(lambda c: c.get(1, 0) >= 3) == 100
        assert trace.first_time(lambda c: c.get(1, 0) >= 99) is None

    def test_final(self):
        assert self.make_trace().final().interactions == 200
        assert Trace().final() is None

    def test_to_csv(self):
        csv_text = self.make_trace().to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0].startswith("interactions")
        assert len(lines) == 4
        assert lines[3].split(",")[0] == "200"

    def test_to_csv_headers_are_plain_str(self):
        # String keys must export as bare column names, not repr()s.
        trace = Trace([TracePoint(0, {"infected": 1, "susceptible": 9})])
        header = trace.to_csv().splitlines()[0]
        assert header == "interactions,infected,susceptible"
        assert "'" not in header

    def test_to_csv_rejects_str_collisions(self):
        trace = Trace([TracePoint(0, {1: 2, "1": 3})])
        with pytest.raises(ValueError, match="collide"):
            trace.to_csv()

    def test_csv_round_trip(self):
        trace = Trace([
            TracePoint(0, {"a": 5, "b": 1}),
            TracePoint(100, {"a": 3, "b": 3}),
            TracePoint(200, {"b": 6}),
        ])
        again = Trace.from_csv(trace.to_csv())
        assert again.to_csv() == trace.to_csv()
        assert [p.interactions for p in again.points] == [0, 100, 200]
        assert again.points[2].counts == {"a": 0, "b": 6}

    def test_from_csv_rejects_garbage(self):
        with pytest.raises(ValueError, match="interactions"):
            Trace.from_csv("n,mean\n4,16\n")
