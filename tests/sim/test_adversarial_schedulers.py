"""Tests for the adversarial schedulers and the scheduler spec strings."""

import random

import pytest

from repro.core.population import complete_population
from repro.protocols.counting import Epidemic, count_to_five
from repro.sim.engine import Simulation
from repro.sim.schedulers import (
    SCHEDULER_KINDS,
    AdversarialDelayScheduler,
    EclipseScheduler,
    PartitionScheduler,
    StallingScheduler,
    scheduler_from_spec,
    validate_scheduler_spec,
)


def _trajectory(scheduler_factory, seed, steps=2_000):
    sim = Simulation(Epidemic(), [1, 0, 0, 0, 0, 0], seed=seed,
                     scheduler=scheduler_factory())
    sim.run(steps)
    return sim.states, sim.interactions


class TestDeterminism:
    @pytest.mark.parametrize("factory", [
        lambda: PartitionScheduler(6, blocks=2, heal_after=500),
        lambda: EclipseScheduler(6, target=0, budget=50),
        lambda: AdversarialDelayScheduler(complete_population(6), Epidemic(),
                                          budget=50),
    ], ids=["partition", "eclipse", "delay"])
    def test_same_seed_same_trajectory(self, factory):
        assert _trajectory(factory, seed=7) == _trajectory(factory, seed=7)

    def test_different_seed_diverges(self):
        def pairs(seed):
            sched = PartitionScheduler(6, heal_after=500)
            rng = random.Random(seed)
            return [sched.next_encounter([0] * 6, rng) for _ in range(40)]

        # Two seeds almost surely schedule different pair sequences;
        # equality would mean the RNG is ignored.
        assert pairs(1) != pairs(2)


class TestPartition:
    def test_validation(self):
        with pytest.raises(ValueError):
            PartitionScheduler(4, blocks=3)  # a block with < 2 agents
        with pytest.raises(ValueError):
            PartitionScheduler(1)
        with pytest.raises(ValueError):
            PartitionScheduler(4, heal_after=-1)

    def test_epidemic_cannot_cross_before_healing(self):
        sched = PartitionScheduler(6, blocks=2, heal_after=3_000)
        sim = Simulation(Epidemic(), [1, 0, 0, 0, 0, 0], seed=0,
                         scheduler=sched)
        sim.run(2_000)
        assert sim.states[3:] == [0, 0, 0]  # the other block is untouched
        sim.run(20_000)  # healed: the epidemic completes
        assert sim.states == [1] * 6


class TestEclipse:
    def test_validation(self):
        with pytest.raises(ValueError):
            EclipseScheduler(2)
        with pytest.raises(ValueError):
            EclipseScheduler(5, target=5)
        with pytest.raises(ValueError):
            EclipseScheduler(5, budget=0)

    def test_target_starved_between_grants(self):
        sched = EclipseScheduler(5, target=3, budget=100)
        rng = random.Random(0)
        grants = [step for step in range(1_010)
                  if 3 in sched.next_encounter([0] * 5, rng)]
        assert len(grants) == 10  # exactly one grant per budget cycle
        assert all(b - a == 101 for a, b in zip(grants, grants[1:]))

    def test_epidemic_still_reaches_target(self):
        sched = EclipseScheduler(5, target=4, budget=200)
        sim = Simulation(Epidemic(), [1, 0, 0, 0, 0], seed=3,
                         scheduler=sched)
        sim.run(10_000)
        assert sim.states[4] == 1


class TestAdversarialDelay:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdversarialDelayScheduler(complete_population(4), Epidemic(),
                                      budget=0)

    def test_withholds_productive_encounters(self):
        pop = complete_population(4)
        sched = AdversarialDelayScheduler(pop, Epidemic(), budget=100)
        sim = Simulation(Epidemic(), [1, 0, 0, 0], population=pop,
                         scheduler=sched, seed=0)
        sim.run(100)
        assert sim.states == [1, 0, 0, 0]  # nothing productive fired yet
        sim.run(1_000)
        assert sim.states == [1] * 4  # budget forces progress eventually

    def test_custom_delay_predicate(self):
        pop = complete_population(4)
        protocol = count_to_five()
        # Only delay encounters that would produce the alert state.
        sched = AdversarialDelayScheduler(
            pop, protocol, budget=10_000,
            delay=lambda p, q: max(protocol.delta(p, q)) >= 5)
        sim = Simulation(protocol, [1, 1, 1, 1], population=pop,
                         scheduler=sched, seed=0)
        sim.run(5_000)
        assert max(sim.states) < 5  # merges happen, the alert is withheld


class TestSpecStrings:
    def test_round_trip_kinds(self):
        for kind in SCHEDULER_KINDS:
            validate_scheduler_spec(kind)

    def test_uniform_returns_none(self):
        assert scheduler_from_spec("uniform", n=8) is None

    def test_partition_args(self):
        sched = scheduler_from_spec("partition:blocks=3,heal=42", n=9)
        assert isinstance(sched, PartitionScheduler)
        assert sched.blocks == 3 and sched.heal_after == 42

    def test_eclipse_args(self):
        sched = scheduler_from_spec("eclipse:target=2,budget=7", n=5)
        assert isinstance(sched, EclipseScheduler)
        assert sched.target == 2 and sched.budget == 7

    def test_protocol_needing_kinds(self):
        with pytest.raises(ValueError, match="needs a protocol"):
            scheduler_from_spec("delay", n=4)
        sched = scheduler_from_spec("delay:budget=9", n=4,
                                    protocol=Epidemic())
        assert isinstance(sched, AdversarialDelayScheduler)
        assert sched.budget == 9
        stalling = scheduler_from_spec("stalling", n=4, protocol=Epidemic())
        assert isinstance(stalling, StallingScheduler)

    @pytest.mark.parametrize("bad", [
        "warp", "partition:heal", "eclipse:budget=x", "delay:target=1",
        "stalling:foo=1"])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            validate_scheduler_spec(bad)
