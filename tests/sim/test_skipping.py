"""Tests for the exact no-op-skipping engine."""

import pytest

from repro.protocols.counting import CountToK, Epidemic, count_to_five
from repro.protocols.leader import LEADER, LeaderElection, \
    expected_election_interactions
from repro.protocols.quotient import QuotientProtocol
from repro.sim.multiset_engine import MultisetSimulation
from repro.sim.skipping import SkippingSimulation
from repro.sim.stats import run_trials


class TestMechanics:
    def test_detects_silence(self, seed):
        sim = SkippingSimulation(CountToK(3), {1: 4, 0: 2}, seed=seed)
        assert sim.run_to_silence()
        assert sim.silent
        assert sim.unanimous_output() == 1
        # Further steps are no-ops and do not advance the clock.
        clock = sim.interactions
        assert sim.step() is False
        assert sim.interactions == clock

    def test_every_step_is_reactive(self, seed):
        sim = SkippingSimulation(count_to_five(), {1: 6, 0: 6}, seed=seed)
        before = dict(sim.counts)
        changed = sim.step()
        assert changed
        assert dict(sim.counts) != before

    def test_clock_includes_skipped_noops(self, seed):
        # One infected agent among many: most pairs are no-ops, so the
        # clock should advance far faster than the reactive step count.
        sim = SkippingSimulation(Epidemic(), {1: 1, 0: 63}, seed=seed)
        reactive_steps = 0
        while not sim.silent and reactive_steps < 100:
            if sim.step():
                reactive_steps += 1
        assert sim.counts == {1: 64}
        assert reactive_steps == 63          # exactly n-1 infections
        assert sim.interactions > 63         # but many more interactions

    def test_population_preserved(self, seed):
        sim = SkippingSimulation(QuotientProtocol(3), {1: 9, 0: 5}, seed=seed)
        sim.run_to_silence()
        assert sum(sim.counts.values()) == 14


class TestExactness:
    """The skipping engine matches the naive engine in distribution."""

    def test_leader_election_expectation(self, seed):
        n = 12
        want = expected_election_interactions(n)

        def trial(s):
            sim = SkippingSimulation(LeaderElection(), {1: n}, seed=s)
            sim.run_until(lambda x: x.counts.get(LEADER, 0) == 1,
                          max_steps=10_000_000, check_every=1)
            return sim.interactions

        summary = run_trials(trial, trials=400, seed=seed)
        assert abs(summary.mean - want) < 5 * summary.stderr + 1

    def test_epidemic_time_agrees_with_naive(self, seed):
        n = 32

        def skipping_trial(s):
            sim = SkippingSimulation(Epidemic(), {1: 1, 0: n - 1}, seed=s)
            sim.run_to_silence()
            return sim.interactions

        def naive_trial(s):
            sim = MultisetSimulation(Epidemic(), {1: 1, 0: n - 1}, seed=s)
            sim.run_until(lambda x: x.counts.get(1, 0) == n,
                          max_steps=10_000_000, check_every=1)
            return sim.interactions

        fast = run_trials(skipping_trial, trials=200, seed=seed)
        slow = run_trials(naive_trial, trials=200, seed=seed + 1)
        spread = (fast.stderr**2 + slow.stderr**2) ** 0.5
        assert abs(fast.mean - slow.mean) < 5 * spread + 1

    def test_jump_chain_identical_verdicts(self, seed):
        sim = SkippingSimulation(count_to_five(), {1: 7, 0: 5}, seed=seed)
        sim.run_until(lambda s: s.unanimous_output() == 1,
                      max_steps=1_000_000, check_every=1)
        assert sim.unanimous_output() == 1


class TestSpeedup:
    def test_far_fewer_engine_steps_than_interactions(self, seed):
        """The point of the engine: simulated interactions >> reactive
        steps for convergence-tail-heavy protocols."""
        sim = SkippingSimulation(CountToK(10), {1: 10, 0: 200}, seed=seed)
        reactive = 0
        while not sim.silent and reactive < 100_000:
            if sim.step():
                reactive += 1
        assert sim.silent or sim.unanimous_output() == 1
        assert sim.interactions > 5 * reactive


class TestIncrementalTables:
    """The incremental reactive-table mode vs. the full-rebuild mode.

    Both modes consume the RNG identically and scan pairs in the same
    order, so fixed-seed runs must agree state for state — including the
    insertion order of the counts dict, which fixes the scan order of
    every later step.
    """

    def _pair(self, protocol_factory, counts, seed):
        return (SkippingSimulation(protocol_factory(), dict(counts),
                                   seed=seed, incremental=True),
                SkippingSimulation(protocol_factory(), dict(counts),
                                   seed=seed, incremental=False))

    def _assert_locked(self, fast, slow):
        assert fast.interactions == slow.interactions
        assert fast.reactive_steps == slow.reactive_steps
        assert fast.last_change == slow.last_change
        assert fast.last_output_change == slow.last_output_change
        assert list(fast.counts.items()) == list(slow.counts.items())

    def test_threshold_bit_identical(self, seed):
        from repro.protocols.threshold import ThresholdProtocol

        fast, slow = self._pair(lambda: ThresholdProtocol({1: 20, 0: -19}, 0),
                                {1: 60, 0: 60}, seed)
        for _ in range(1_500):
            assert fast.step() == slow.step()
            self._assert_locked(fast, slow)

    def test_count_to_five_bit_identical_to_silence(self, seed):
        fast, slow = self._pair(count_to_five, {1: 7, 0: 5}, seed)
        for _ in range(100_000):
            changed = fast.step()
            assert changed == slow.step()
            self._assert_locked(fast, slow)
            if not changed:
                break
        assert fast.silent and slow.silent

    def test_leader_election_bit_identical(self, seed):
        fast, slow = self._pair(LeaderElection, {1: 80}, seed)
        for _ in range(200):
            assert fast.step() == slow.step()
            self._assert_locked(fast, slow)

    def test_crash_invalidates_tables(self, seed):
        fast, slow = self._pair(LeaderElection, {1: 40}, seed)
        for sim in (fast, slow):
            sim.run(30)
            sim.crash_random(3)
        for _ in range(100):
            assert fast.step() == slow.step()
            self._assert_locked(fast, slow)

    def test_corruption_invalidates_tables(self, seed):
        from repro.protocols.counting import Epidemic

        def infect(state, protocol, rng):
            return 1

        fast, slow = self._pair(Epidemic, {1: 1, 0: 40}, seed)
        for sim in (fast, slow):
            sim.run(5)
            sim.corrupt_random(infect)
        for _ in range(30):
            assert fast.step() == slow.step()
            self._assert_locked(fast, slow)


class TestParentKwargs:
    def test_fault_plans_rejected(self):
        from repro.sim.faults import CrashAt, FaultPlan

        plan = FaultPlan(CrashAt(10, 1), seed=0)
        with pytest.raises(TypeError, match="fault plans"):
            SkippingSimulation(LeaderElection(), {1: 10}, faults=plan)

    def test_monitors_forwarded(self, seed):
        class CountingMonitor:
            def __init__(self):
                self.attached = None
                self.steps = 0

            def on_attach(self, sim):
                self.attached = sim

            def after_step(self, sim, changed):
                self.steps += 1

        monitor = CountingMonitor()
        sim = SkippingSimulation(count_to_five(), {1: 6, 0: 6}, seed=seed,
                                 monitors=(monitor,))
        assert monitor.attached is sim
        assert monitor in sim.monitors
        sim.step()
        sim.step()
        assert monitor.steps == 2
