"""Tests for convergence stopping rules."""

import repro.sim.convergence as convergence
from repro.protocols.counting import CountToK, Epidemic, count_to_five
from repro.protocols.majority import majority_protocol
from repro.sim.convergence import (
    run_until_correct_stable,
    run_until_quiescent,
    run_until_silent,
)
from repro.sim.engine import Simulation, simulate_counts
from repro.sim.multiset_engine import MultisetSimulation


class TestRunUntilSilent:
    def test_stops_on_silence(self, seed):
        sim = simulate_counts(CountToK(3), {1: 5, 0: 3}, seed=seed)
        result = run_until_silent(sim, max_steps=500_000)
        assert result.stopped
        assert result.output == 1

    def test_budget_respected(self, seed):
        # count-to-five with 4 ones never goes silent: (q0, q4) swaps forever.
        sim = simulate_counts(count_to_five(), {1: 4, 0: 4}, seed=seed)
        result = run_until_silent(sim, max_steps=3_000)
        assert not result.stopped
        assert result.output == 0  # outputs converged anyway

    def test_converged_at_recorded(self, seed):
        sim = simulate_counts(Epidemic(), {1: 1, 0: 9}, seed=seed)
        result = run_until_silent(sim, max_steps=200_000)
        assert result.stopped
        assert 0 < result.converged_at <= result.interactions

    def test_multiset_engine_supported(self, seed):
        # The multiset engines have no last_output_change tracker; the
        # driver falls back to last_change for converged_at.
        sim = MultisetSimulation(Epidemic(), {1: 1, 0: 19}, seed=seed)
        result = run_until_silent(sim, max_steps=200_000)
        assert result.stopped
        assert result.output == 1
        assert result.converged_at == sim.last_change

    def test_unchanged_state_skips_silence_checks(self, seed, monkeypatch):
        # Epidemic at n=200 spends most interactions on no-ops, so most
        # check_every=5 windows see no state change; the driver must skip
        # the is_silent scan for all of those checkpoints.
        calls = {"n": 0}
        real = convergence.is_silent

        def counting(protocol, multiset):
            calls["n"] += 1
            return real(protocol, multiset)

        monkeypatch.setattr(convergence, "is_silent", counting)
        sim = MultisetSimulation(Epidemic(), {1: 1, 0: 199}, seed=seed)
        result = run_until_silent(sim, max_steps=500_000, check_every=5)
        assert result.stopped
        checkpoints = sim.interactions // 5
        assert 0 < calls["n"] < checkpoints


class TestRunUntilQuiescent:
    def test_patience_window(self, seed):
        sim = simulate_counts(majority_protocol(), {0: 4, 1: 6}, seed=seed)
        result = run_until_quiescent(sim, patience=5_000, max_steps=2_000_000)
        assert result.stopped
        assert result.output == 1
        assert result.interactions - result.converged_at >= 5_000

    def test_budget_exhaustion_reported(self, seed):
        sim = simulate_counts(majority_protocol(), {0: 6, 1: 6}, seed=seed)
        result = run_until_quiescent(sim, patience=10**9, max_steps=2_000)
        assert not result.stopped


class TestRunUntilCorrectStable:
    def test_measures_convergence_time(self, seed):
        sim = simulate_counts(majority_protocol(), {0: 3, 1: 9}, seed=seed)
        result = run_until_correct_stable(sim, 1, max_steps=2_000_000)
        assert result.stopped
        assert result.output == 1
        assert result.converged_at <= result.interactions

    def test_extends_when_outputs_regress(self, seed):
        # Start from scratch; outputs flip around early, so converged_at
        # must exceed zero.
        sim = simulate_counts(majority_protocol(), {0: 5, 1: 7}, seed=seed)
        result = run_until_correct_stable(sim, 1, max_steps=2_000_000)
        assert result.stopped
        assert result.converged_at > 0

    def test_already_correct_initially(self, seed):
        # All agents start with output 0 and the answer is 0.
        sim = simulate_counts(count_to_five(), {1: 2, 0: 4}, seed=seed)
        result = run_until_correct_stable(sim, 0, max_steps=100_000)
        assert result.stopped
        assert result.converged_at == 0
