"""Tests for protocol compilation (dense states, flat tables, memo)."""

import gc
import weakref

import pytest

from repro.core.protocol import DictProtocol, ProtocolError
from repro.protocols.counting import CountToK
from repro.protocols.leader import LeaderElection
from repro.protocols.majority import majority_protocol
from repro.sim.compiled import (
    CompiledProtocol,
    clear_compile_cache,
    compile_cache_stats,
    compile_protocol,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_compile_cache()
    yield
    clear_compile_cache()


class TestTables:
    def test_states_match_reachable_closure(self):
        protocol = majority_protocol()
        compiled = compile_protocol(protocol)
        assert set(compiled.states) == set(protocol.states())
        assert compiled.size == len(compiled.states)
        # Deterministic numbering: sorted by repr.
        assert list(compiled.states) == sorted(compiled.states, key=repr)
        assert all(compiled.index[s] == i
                   for i, s in enumerate(compiled.states))

    def test_delta_tables_agree_with_protocol(self):
        protocol = majority_protocol()
        compiled = compile_protocol(protocol)
        for p, state_p in enumerate(compiled.states):
            for q, state_q in enumerate(compiled.states):
                expected = protocol.delta(state_p, state_q)
                p2, q2 = compiled.delta_ids(p, q)
                assert (compiled.states[p2], compiled.states[q2]) == expected
                flat = p * compiled.size + q
                if expected == (state_p, state_q):
                    assert compiled.pair_table[flat] is None
                    assert not compiled.is_reactive(p, q)
                else:
                    assert compiled.pair_table[flat] == (p2, q2)
                    assert compiled.is_reactive(p, q)

    def test_outputs_and_initials(self):
        protocol = CountToK(3)
        compiled = compile_protocol(protocol)
        for i, state in enumerate(compiled.states):
            assert compiled.output_symbol(i) == protocol.output(state)
        for symbol in protocol.input_alphabet:
            initial = compiled.initial_id(symbol)
            assert compiled.states[initial] == protocol.initial_state(symbol)
        with pytest.raises(ValueError):
            compiled.initial_id("nonsense")

    def test_reactive_matrix_is_view(self):
        compiled = compile_protocol(LeaderElection())
        matrix = compiled.reactive_matrix()
        assert matrix.shape == (compiled.size, compiled.size)
        assert matrix.reshape(-1).tolist() == compiled.reactive_mask.tolist()

    def test_state_lookups_round_trip(self):
        compiled = compile_protocol(LeaderElection())
        for state in compiled.states:
            assert compiled.state_of(compiled.state_id(state)) == state
        with pytest.raises(KeyError):
            compiled.state_id("not-a-state")


class TestExtraStates:
    def test_extra_states_widen_closure(self):
        # A state outside the input closure: declared in the tables but
        # unreachable from initial states.
        protocol = DictProtocol(
            input_map={"a": "A"},
            output_map={"A": 0, "B": 1, "C": 1},
            transitions={("B", "A"): ("C", "C")},
        )
        plain = compile_protocol(protocol)
        assert "B" not in plain.index
        widened = compile_protocol(protocol, extra_states=("B",))
        assert {"A", "B", "C"} <= set(widened.states)

    def test_extra_state_compilations_not_memoized(self):
        protocol = LeaderElection()
        a = compile_protocol(protocol, extra_states=(LeaderElection().initial_state(1),))
        b = compile_protocol(protocol, extra_states=(LeaderElection().initial_state(1),))
        assert a is not b
        assert compile_cache_stats() == {"keyed": 0, "hits": 0, "misses": 0}
        # And they do not poison the plain instance cache.
        assert compile_protocol(protocol) is compile_protocol(protocol)

    def test_delta_escaping_declared_closure_raises(self):
        # A protocol whose states() understates the real closure (here by
        # overriding it) must fail loudly, not emit dangling table ids.
        class Lying(DictProtocol):
            def states(self, max_states=1_000_000):
                return frozenset({"A"})

        protocol = Lying(
            input_map={"a": "A"},
            output_map={"A": 0, "B": 1},
            transitions={("A", "A"): ("B", "B")},
        )
        with pytest.raises(ProtocolError):
            CompiledProtocol(protocol)

    def test_max_states_guard(self):
        with pytest.raises(ProtocolError):
            compile_protocol(CountToK(40), max_states=5)


class TestMemoization:
    def test_instance_cache_returns_same_object(self):
        protocol = majority_protocol()
        assert compile_protocol(protocol) is compile_protocol(protocol)
        # The cache lives on the instance, not in a global table, so
        # distinct instances compile separately...
        assert compile_protocol(majority_protocol()) is not \
            compile_protocol(protocol)
        # ...and nothing global pins them.
        assert compile_cache_stats() == {"keyed": 0, "hits": 0, "misses": 0}

    def test_key_memo_shares_across_instances(self):
        key = ("registry", "majority", ())
        a = compile_protocol(majority_protocol(), key=key)
        b = compile_protocol(majority_protocol(), key=key)
        assert a is b
        # The second call is the warm-cache hit the fleet workers count.
        assert compile_cache_stats() == {"keyed": 1, "hits": 1, "misses": 1}

    def test_distinct_keys_compile_separately(self):
        a = compile_protocol(CountToK(3), key=("count-to-k", 3))
        b = compile_protocol(CountToK(4), key=("count-to-k", 4))
        assert a is not b
        assert compile_cache_stats()["keyed"] == 2

    def test_instance_cache_dies_with_protocol(self):
        # The compiled tables are reachable only through the protocol, so
        # collecting the protocol collects the tables — no global memo
        # entry pins anonymous protocols.
        protocol = majority_protocol()
        compiled_ref = weakref.ref(compile_protocol(protocol))
        assert compiled_ref() is not None
        del protocol
        gc.collect()
        assert compiled_ref() is None

    def test_clear_compile_cache(self):
        compile_protocol(majority_protocol(), key="k")
        assert compile_cache_stats() == {"keyed": 1, "hits": 0, "misses": 1}
        clear_compile_cache()
        assert compile_cache_stats() == {"keyed": 0, "hits": 0, "misses": 0}

    def test_protocol_compiled_hook(self):
        protocol = LeaderElection()
        compiled = protocol.compiled()
        assert isinstance(compiled, CompiledProtocol)
        assert protocol.compiled() is compiled
        # A stable key shares one compilation across instances.
        assert (protocol.compiled(key="le")
                is LeaderElection().compiled(key="le"))
