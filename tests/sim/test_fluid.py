"""Tests for the mean-field fluid-limit engine.

The fluid engine's contract is *deterministic given the spec*: one
integration per population, whose trajectory is the n -> infinity limit
of the discrete engines' trial distribution.  This file pins the drift
derivation (against finite differences and closed forms), the adaptive
integrator (against exact ODE solutions), the stopping-rule analogs
(against the discrete drivers' semantics and the paper's expected
hitting times), and the trace/CLT machinery.  Statistical agreement
with the ensemble engine lives in test_fluid_crossval.py.
"""

import math

import numpy as np
import pytest

from repro.protocols.counting import Epidemic, count_to_five
from repro.protocols.leader import LeaderElection
from repro.protocols.majority import majority_protocol
from repro.protocols.sir import SIREpidemic, sir_fluid_endpoint
from repro.sim.compiled import compile_protocol
from repro.sim.ensemble import EnsembleFaults
from repro.sim.fluid import (
    FluidSimulation,
    MeanFieldODE,
    run_fluid_until_correct_stable,
    run_fluid_until_quiescent,
    run_fluid_until_silent,
)
from repro.sim.trace import Trace


def exact_epidemic_infected(i0: float, tau: float) -> float:
    """Closed-form two-way epidemic: di/dtau = 2 s i (both ordered pairs
    of the (1, 0) encounter are reactive), the logistic curve at rate 2."""
    g = i0 * math.exp(2.0 * tau)
    return g / (1.0 - i0 + g)


class TestMeanFieldODE:
    def test_drift_conserves_total_mass(self):
        for protocol in (Epidemic(), LeaderElection(), SIREpidemic(),
                         majority_protocol(), count_to_five()):
            ode = MeanFieldODE(compile_protocol(protocol))
            rng = np.random.default_rng(7)
            for _ in range(5):
                x = rng.random(ode.size)
                x /= x.sum()
                assert abs(ode.drift(x).sum()) < 1e-14

    def test_leader_election_drift_closed_form(self):
        # (L, L) -> (L, F) is the only reactive pair: dx_L/dtau = -x_L^2.
        ode = MeanFieldODE(compile_protocol(LeaderElection()))
        i_leader = ode.compiled.index["L"]
        x = np.zeros(ode.size)
        x[i_leader] = 0.4
        x[1 - i_leader] = 0.6
        drift = ode.drift(x)
        assert drift[i_leader] == pytest.approx(-0.16)
        assert drift[1 - i_leader] == pytest.approx(0.16)

    def test_jacobian_matches_finite_differences(self):
        for protocol in (SIREpidemic(), majority_protocol()):
            ode = MeanFieldODE(compile_protocol(protocol))
            rng = np.random.default_rng(11)
            x = rng.random(ode.size)
            x /= x.sum()
            jac = ode.jacobian(x)
            eps = 1e-7
            for j in range(ode.size):
                bumped = x.copy()
                bumped[j] += eps
                column = (ode.drift(bumped) - ode.drift(x)) / eps
                np.testing.assert_allclose(jac[:, j], column, atol=1e-5)

    def test_activity_decomposition(self):
        # Total activity bounds output-changing activity, and for the
        # epidemic every reactive pair changes an output.
        ode = MeanFieldODE(compile_protocol(Epidemic()))
        x = np.array([0.5, 0.5]) if ode.compiled.index[0] == 0 \
            else np.array([0.5, 0.5])
        assert ode.activity(x) == pytest.approx(0.5)  # 2 * s * i
        assert ode.output_activity(x) == pytest.approx(ode.activity(x))

    def test_diffusion_is_positive_semidefinite(self):
        ode = MeanFieldODE(compile_protocol(SIREpidemic()))
        x = np.array([0.2, 0.3, 0.5])
        eigenvalues = np.linalg.eigvalsh(ode.diffusion(x))
        assert all(e >= -1e-12 for e in eigenvalues)


class TestConstruction:
    def test_requires_exactly_one_counts_argument(self):
        with pytest.raises(ValueError, match="exactly one"):
            FluidSimulation(Epidemic())
        with pytest.raises(ValueError, match="exactly one"):
            FluidSimulation(Epidemic(), {1: 5}, state_counts={1: 5})

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="not in input alphabet"):
            FluidSimulation(Epidemic(), {"bogus": 5})
        with pytest.raises(ValueError, match="non-negative"):
            FluidSimulation(Epidemic(), {1: -1, 0: 10})
        with pytest.raises(ValueError, match="at least two agents"):
            FluidSimulation(Epidemic(), {1: 1})

    def test_state_counts_constructor(self):
        fl = FluidSimulation(Epidemic(), state_counts={1: 3, 0: 7})
        assert fl.n == 10
        assert fl.fractions()[1] == pytest.approx(0.3)

    def test_atol_defaults_to_single_agent_resolution(self):
        fl = FluidSimulation(Epidemic(), {1: 10, 0: 990})
        assert fl.atol == pytest.approx(fl.rtol / 1000)


class TestIntegrator:
    def test_epidemic_matches_logistic_closed_form(self):
        n = 1000
        fl = FluidSimulation(Epidemic(), {1: 10, 0: n - 10})
        for tau in (0.5, 1.0, 2.0, 4.0):
            fl.advance(tau)
            assert fl.fractions()[1] == pytest.approx(
                exact_epidemic_infected(0.01, tau), abs=1e-6)

    def test_sir_reaches_exact_endpoint(self):
        fl = FluidSimulation(SIREpidemic(), {0: 700, 1: 100, 2: 200})
        fl.advance(200.0)
        expected_s, _, expected_r = sir_fluid_endpoint(0.7, 0.1, 0.2)
        fractions = fl.fractions()
        assert fractions["S"] == pytest.approx(expected_s, abs=1e-6)
        assert fractions["R"] == pytest.approx(expected_r, abs=1e-6)

    def test_sir_conserves_product_of_s_and_r(self):
        # d(ln s + ln r)/dtau = 0 is the SIR ODE's hidden invariant; the
        # integrator must hold it to tolerance along the trajectory.
        fl = FluidSimulation(SIREpidemic(), {0: 700, 1: 100, 2: 200})
        fl.advance(10.0)
        for x in fl.trace.fractions:
            by_state = dict(zip(fl.compiled.states, x))
            assert by_state["S"] * by_state["R"] == pytest.approx(
                0.7 * 0.2, rel=1e-5)

    def test_stays_on_simplex(self):
        fl = FluidSimulation(SIREpidemic(), {0: 900, 1: 99, 2: 1})
        fl.advance(50.0)
        for x in fl.trace.fractions:
            assert x.min() >= 0.0
            assert x.sum() == pytest.approx(1.0, abs=1e-12)

    def test_deterministic_across_runs(self):
        runs = []
        for _ in range(2):
            fl = FluidSimulation(majority_protocol(), {1: 60, 0: 40})
            fl.advance(7.0)
            runs.append(fl.x.copy())
        assert np.array_equal(runs[0], runs[1])

    def test_backwards_integration_rejected(self):
        fl = FluidSimulation(Epidemic(), {1: 10, 0: 90})
        fl.advance(1.0)
        with pytest.raises(ValueError, match="backwards"):
            fl.advance(0.5)


class TestSilent:
    def test_leader_election_hits_paper_scale_hitting_time(self):
        # Fluid silence (activity <= 1/n^2) fires at x_L = 1/n, i.e.
        # after n(n-1) interactions — the (n-1)^2 discrete expectation
        # times n/(n-1).
        n = 1000
        fl = FluidSimulation(LeaderElection(), {1: n})
        result = run_fluid_until_silent(fl, max_steps=4 * n * n)
        assert result.stopped
        assert result.converged_at == pytest.approx(n * (n - 1), rel=5e-3)
        assert result.interactions == result.converged_at
        # One leader among n agents: not unanimous.
        assert result.output is None

    def test_astronomical_population_is_milliseconds(self):
        n = 10 ** 9
        fl = FluidSimulation(LeaderElection(), {1: n})
        result = run_fluid_until_silent(fl, max_steps=4 * n * n)
        assert result.stopped
        assert result.converged_at == pytest.approx(n * (n - 1), rel=1e-3)
        assert fl.accepted_steps < 2000

    def test_initially_silent_population(self):
        # All-0 epidemic: no reactive mass at all, silent at time zero.
        fl = FluidSimulation(Epidemic(), {0: 100})
        result = run_fluid_until_silent(fl, max_steps=10 ** 6)
        assert result.stopped
        assert result.converged_at == 0
        assert result.output == 0

    def test_budget_exhaustion_reports_not_stopped(self):
        n = 1000
        fl = FluidSimulation(LeaderElection(), {1: n})
        result = run_fluid_until_silent(fl, max_steps=n)  # far too few
        assert not result.stopped
        assert result.interactions == n
        assert result.converged_at == n


class TestQuiescent:
    def test_reported_clock_overshoots_by_patience(self):
        patience = 500
        fl = FluidSimulation(Epidemic(), {1: 10, 0: 990})
        result = run_fluid_until_quiescent(fl, patience=patience,
                                           max_steps=10 ** 6)
        assert result.stopped
        assert result.interactions - result.converged_at == patience
        assert result.output == 1

    def test_budget_beats_patience_window(self):
        fl = FluidSimulation(Epidemic(), {1: 10, 0: 990})
        probe = FluidSimulation(Epidemic(), {1: 10, 0: 990})
        converged = run_fluid_until_quiescent(probe, patience=500,
                                              max_steps=10 ** 6).converged_at
        result = run_fluid_until_quiescent(fl, patience=500,
                                           max_steps=converged + 100)
        assert not result.stopped
        assert result.interactions == converged + 100
        assert result.converged_at == converged

    def test_rejects_non_positive_patience(self):
        fl = FluidSimulation(Epidemic(), {1: 10, 0: 990})
        with pytest.raises(ValueError, match="patience"):
            run_fluid_until_quiescent(fl, patience=0, max_steps=100)


class TestCorrectStable:
    def test_majority_converges_correct(self):
        n = 1000
        fl = FluidSimulation(majority_protocol(), {1: 600, 0: 400})
        result = run_fluid_until_correct_stable(fl, 1, max_steps=10 ** 8)
        assert result.stopped
        assert result.output == 1
        # Default settle: 2 * converged_at + 4n, like the discrete driver.
        assert result.interactions == pytest.approx(
            2 * result.converged_at + 4 * n, rel=1e-6)

    def test_impossible_output_runs_to_budget(self):
        fl = FluidSimulation(Epidemic(), {1: 10, 0: 990})
        result = run_fluid_until_correct_stable(fl, "no-such-symbol",
                                                max_steps=5000)
        assert not result.stopped
        assert result.interactions == 5000

    def test_budget_exhaustion_before_convergence(self):
        fl = FluidSimulation(majority_protocol(), {1: 600, 0: 400})
        result = run_fluid_until_correct_stable(fl, 1, max_steps=100)
        assert not result.stopped
        assert result.interactions == 100


class TestTrace:
    def test_records_every_accepted_step(self):
        fl = FluidSimulation(Epidemic(), {1: 10, 0: 990})
        fl.advance(5.0)
        assert len(fl.trace) == fl.accepted_steps + 1  # + initial sample
        assert fl.trace.taus[0] == 0.0
        assert fl.trace.taus[-1] == pytest.approx(5.0)

    def test_round_trips_through_trace_csv(self):
        fl = FluidSimulation(Epidemic(), {1: 10, 0: 990})
        fl.advance(5.0)
        for trace in (fl.trace.state_trace(), fl.trace.output_trace()):
            restored = Trace.from_csv(trace.to_csv())
            assert restored.points == trace.points
        final = fl.trace.output_trace().final()
        assert final.counts["1"] + final.counts["0"] == 1000

    def test_interactions_are_scaled_taus(self):
        fl = FluidSimulation(Epidemic(), {1: 10, 0: 990})
        fl.advance(2.0)
        assert fl.trace.interactions()[-1] == 2000
        assert fl.interactions == 2000

    def test_record_false_disables_recording(self):
        fl = FluidSimulation(Epidemic(), {1: 10, 0: 990}, record=False)
        fl.advance(2.0)
        assert fl.trace is None

    def test_bands_need_clt(self):
        fl = FluidSimulation(Epidemic(), {1: 10, 0: 990})
        fl.advance(1.0)
        with pytest.raises(ValueError, match="clt"):
            fl.trace.band(0)


class TestCLT:
    def test_band_width_scales_as_inverse_sqrt_n(self):
        bands = []
        for n in (1000, 100_000):
            fl = FluidSimulation(Epidemic(), {1: n // 100, 0: n - n // 100},
                                 clt=True)
            fl.advance(1.0)
            bands.append(fl.std_bands().max())
        assert bands[0] / bands[1] == pytest.approx(10.0, rel=0.01)

    def test_covariance_stays_symmetric(self):
        fl = FluidSimulation(SIREpidemic(), {0: 700, 1: 100, 2: 200},
                             clt=True)
        fl.advance(3.0)
        np.testing.assert_allclose(fl.cov, fl.cov.T)

    def test_conserved_mass_means_anticorrelated_states(self):
        # Two-state protocol: the CLT covariance of (x0, x1) must be
        # singular along the conservation direction, so var0 = var1 and
        # cov01 = -var0.
        fl = FluidSimulation(Epidemic(), {1: 10, 0: 990}, clt=True)
        fl.advance(1.0)
        assert fl.cov[0, 0] == pytest.approx(fl.cov[1, 1], rel=1e-6)
        assert fl.cov[0, 1] == pytest.approx(-fl.cov[0, 0], rel=1e-6)

    def test_band_is_recorded_per_step(self):
        fl = FluidSimulation(Epidemic(), {1: 10, 0: 990}, clt=True)
        fl.advance(1.0)
        band = fl.trace.band(0)
        assert len(band) == len(fl.trace)
        assert band[0] == 0.0  # deterministic initial condition
        assert band[-1] > 0.0


class TestFaults:
    """Contract of the fault-perturbed drift (ISSUE-8 fluid layer).

    Rate faults enter as modified drift terms over an augmented state
    vector (one extra dead component for crash); step-indexed fault
    kinds have no n -> infinity limit and are rejected.  Statistical
    agreement with faulted ensemble runs lives in
    test_fluid_crossval.py.
    """

    def test_zero_intensity_descriptor_is_dropped(self):
        fl = FluidSimulation(Epidemic(), {1: 1, 0: 99},
                             faults=EnsembleFaults("omission-rate", 0.0))
        assert fl.faults is None
        assert fl.ode.size == fl.ode.k_live

    def test_crash_at_has_no_mean_field_limit(self):
        with pytest.raises(ValueError, match="no mean-field limit"):
            FluidSimulation(Epidemic(), {1: 1, 0: 99},
                            faults=EnsembleFaults("crash-at", 5, at_step=10))

    def test_clt_is_incompatible_with_faults(self):
        with pytest.raises(ValueError, match="clt"):
            FluidSimulation(Epidemic(), {1: 1, 0: 99}, clt=True,
                            faults=EnsembleFaults("omission-rate", 0.5))

    def test_jacobian_and_diffusion_unavailable_with_faults(self):
        compiled = compile_protocol(Epidemic())
        ode = MeanFieldODE(compiled, EnsembleFaults("omission-rate", 0.5))
        x = np.array([0.1, 0.9])
        with pytest.raises(NotImplementedError):
            ode.jacobian(x)
        with pytest.raises(NotImplementedError):
            ode.diffusion(x)

    def test_crash_rate_mass_accounting(self):
        # d(dead)/dtau = p while the live mass is above the floor, so at
        # tau the dead mass is p * tau (in per-interaction units the
        # expected p * steps / n crash victims), and total mass stays 1.
        p, tau = 0.1, 2.0
        fl = FluidSimulation(Epidemic(), {1: 10, 0: 990},
                             faults=EnsembleFaults("crash-rate", p))
        fl.advance(tau)
        assert fl.dead_mass == pytest.approx(p * tau, rel=1e-3)
        assert fl.live_mass + fl.dead_mass == pytest.approx(1.0, abs=1e-9)

    def test_crash_floor_keeps_survivors(self):
        # Heavy crash for a long horizon: the flow gates off at the
        # two-agent floor instead of draining the simplex.
        n = 100
        fl = FluidSimulation(Epidemic(), {1: 1, 0: n - 1},
                             faults=EnsembleFaults("crash-rate", 0.5))
        fl.advance(2_000.0)
        assert fl.live_mass == pytest.approx(2.0 / n, abs=1e-6)
        assert fl.live_mass + fl.dead_mass == pytest.approx(1.0, abs=1e-9)

    def test_omission_is_exact_time_dilation(self):
        # Dropping each encounter w.p. r rescales the drift by (1 - r):
        # the faulted trajectory at tau equals the plain one at
        # (1 - r) tau, exactly.
        r, tau = 0.5, 1.5
        i0 = 0.01
        fl = FluidSimulation(Epidemic(), {1: 10, 0: 990},
                             faults=EnsembleFaults("omission-rate", r))
        fl.advance(tau)
        infected = fl.output_counts()[1] / fl.n
        assert infected == pytest.approx(
            exact_epidemic_infected(i0, (1.0 - r) * tau), rel=1e-4)

    def test_corruption_pulls_toward_initial_mixture(self):
        # With reset corruption at rate q, the majority drift gains a
        # q (iota - x / ell) term; at a heavy rate the stationary point
        # sits near the uniform initial mixture rather than consensus.
        fl = FluidSimulation(majority_protocol(), {1: 70, 0: 30},
                             faults=EnsembleFaults("corruption-rate", 0.9))
        fl.advance(200.0)
        live = fl.x[:fl.ode.k_live]
        # No consensus: both output classes keep macroscopic mass.
        outputs = fl.output_counts()
        assert min(outputs.values()) > 0.1 * fl.n
        assert live.sum() == pytest.approx(1.0, abs=1e-9)
