"""Reusable fairness-contract assertion for schedulers.

The paper's fairness condition demands that from any configuration
occurring infinitely often, every reachable successor also occurs
infinitely often; for pairwise schedulers over a fixed interaction graph
this reduces to "every edge is scheduled infinitely often from any
recurring configuration".  :func:`assert_fair_in_the_limit` checks the
finite proxy: driven from one *frozen* configuration for a bounded
number of encounters, every ordered pair the scheduler is supposed to
serve gets scheduled at least once.

A scheduler that passes for every frozen configuration it can recur in
is fair in the limit; one that starves some pair forever (the
:class:`~repro.sim.schedulers.StallingScheduler`) fails the assertion,
which is exactly the contract the adversarial schedulers are tested
against in ``test_fairness_contracts.py``.
"""

import random
from collections import Counter
from collections.abc import Sequence


def all_ordered_pairs(n: int) -> list:
    """Every ordered pair of distinct agents (the complete graph)."""
    return [(i, j) for i in range(n) for j in range(n) if i != j]


def assert_fair_in_the_limit(
    scheduler,
    states: Sequence,
    *,
    steps: int = 40_000,
    seed: int = 0,
    pairs: "Sequence | None" = None,
    min_hits: int = 1,
) -> Counter:
    """Drive ``scheduler`` from a frozen configuration; assert coverage.

    ``states`` is held fixed across all ``steps`` encounters (the frozen
    recurring configuration).  ``pairs`` is the set of ordered pairs the
    scheduler must serve — defaults to the scheduler's own edge list
    when it has one, else to every ordered pair over ``len(states)``
    agents.  Raises ``AssertionError`` listing the starved pairs when
    any of them was scheduled fewer than ``min_hits`` times.  Returns
    the full schedule histogram for additional assertions.
    """
    if pairs is None:
        edges = getattr(scheduler, "edges", None)
        pairs = list(edges) if edges else all_ordered_pairs(len(states))
    rng = random.Random(seed)
    hits: Counter = Counter()
    for _ in range(steps):
        hits[scheduler.next_encounter(states, rng)] += 1
    starved = sorted(pair for pair in pairs if hits[pair] < min_hits)
    assert not starved, (
        f"scheduler starved {len(starved)} pair(s) over {steps} encounters "
        f"(unfair within the test horizon): {starved[:10]}")
    return hits
