"""Fairness contracts: every shipped scheduler vs. the frozen-config probe.

Each scheduler is driven from a frozen configuration by
:func:`fairness.assert_fair_in_the_limit`; all the fair-in-the-limit
schedulers — including the three adversarial ones, which withhold
encounters as long as their budgets allow — must still serve every pair.
The :class:`StallingScheduler` is the canonical unfair adversary and is
pinned to *fail* the same assertion.
"""

import random

import pytest
from fairness import all_ordered_pairs, assert_fair_in_the_limit

from repro.core.population import complete_population, line_population
from repro.protocols.counting import Epidemic
from repro.sim.schedulers import (
    AdversarialDelayScheduler,
    EclipseScheduler,
    GreedyChangeScheduler,
    PartitionScheduler,
    RoundRobinScheduler,
    ShuffledSweepScheduler,
    StallingScheduler,
    UniformEdgeScheduler,
    UniformPairScheduler,
    WeightedPairScheduler,
)


class TestFairSchedulers:
    def test_uniform_pair(self):
        assert_fair_in_the_limit(UniformPairScheduler(5), [0] * 5,
                                 steps=10_000)

    def test_uniform_edge(self):
        pop = line_population(5)
        assert_fair_in_the_limit(UniformEdgeScheduler(pop), [0] * 5,
                                 steps=10_000)

    def test_round_robin(self):
        pop = complete_population(4)
        sched = RoundRobinScheduler(pop)
        assert_fair_in_the_limit(sched, [0] * 4, steps=len(pop.edge_list()))

    def test_shuffled_sweep(self):
        pop = complete_population(4)
        sched = ShuffledSweepScheduler(pop)
        assert_fair_in_the_limit(sched, [0] * 4, steps=len(pop.edge_list()))

    def test_weighted_pair(self):
        sched = WeightedPairScheduler(4, weight=lambda s: 1.0 + s)
        assert_fair_in_the_limit(sched, [0, 1, 0, 1], steps=10_000)

    def test_greedy_in_silent_configuration(self):
        # Greedy prefers productive encounters during the transient; in
        # the limit regime (a silent configuration) it is uniform over
        # the edges, which is the recurring configuration the fairness
        # probe must check.
        pop = complete_population(4)
        sched = GreedyChangeScheduler(pop, Epidemic())
        assert_fair_in_the_limit(sched, [1, 1, 1, 1], steps=10_000)


class TestAdversarialSchedulersAreFair:
    def test_partition_after_healing(self):
        sched = PartitionScheduler(6, blocks=3, heal_after=2_000)
        hits = assert_fair_in_the_limit(sched, [0] * 6, steps=30_000,
                                        pairs=all_ordered_pairs(6))
        # Before healing, no cross-block encounter may occur at all.
        pre = random.Random(7)
        fresh = PartitionScheduler(6, blocks=3, heal_after=2_000)
        for _ in range(2_000):
            i, j = fresh.next_encounter([0] * 6, pre)
            assert i // 2 == j // 2, "cross-block encounter before healing"
        assert hits  # coverage histogram returned for extra assertions

    def test_eclipse_within_budget(self):
        sched = EclipseScheduler(5, target=2, budget=50)
        hits = assert_fair_in_the_limit(sched, [0] * 5, steps=30_000,
                                        pairs=all_ordered_pairs(5))
        # The target never interacts more than once per budget cycle.
        target_hits = sum(count for (i, j), count in hits.items()
                          if 2 in (i, j))
        assert target_hits <= 30_000 // 50 + 1

    def test_adversarial_delay_fires_on_budget(self):
        pop = complete_population(4)
        sched = AdversarialDelayScheduler(pop, Epidemic(), budget=100)
        # Frozen mixed configuration: (1, 0) encounters are productive
        # and therefore withheld, but the budget forces each of them out
        # eventually.
        assert_fair_in_the_limit(sched, [1, 1, 0, 0], steps=30_000)


class TestStallingIsUnfair:
    def test_fails_the_fairness_contract(self):
        pop = complete_population(4)
        sched = StallingScheduler(pop, Epidemic())
        with pytest.raises(AssertionError, match="starved"):
            assert_fair_in_the_limit(sched, [1, 1, 0, 0], steps=30_000)
