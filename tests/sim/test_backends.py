"""Tests for the step-kernel backend registry and its fallback contract.

The engine-level behavioral contracts (bit identity for the batched
engines, count identity for the ensemble) are inherited by every
backend through the ``kernel_backend`` fixture in the fingerprint and
scalar-twin suites; this module covers what those suites cannot — the
registry API itself, and each fallback path: an unavailable backend
(numba missing), a population shape with no block-decodable draw
stream, and a kernel factory that raises mid-construction.  Every
fallback must (a) produce results bit-identical to the default numpy
backend and (b) emit exactly one ``RuntimeWarning`` per
(backend, reason) per process; the default backend must never warn.
"""

import warnings

import pytest

from repro.protocols.leader import LeaderElection
from repro.protocols.majority import majority_protocol
from repro.sim import backends
from repro.sim.backends import (
    DEFAULT_BACKEND,
    FAMILIES,
    KernelBackend,
    available_backends,
    backend_names,
    backend_report,
    get_backend,
    register_backend,
    reset_backend_warnings,
    select_kernels,
)
from repro.sim.batched import BatchedMultisetSimulation, BatchedSimulation
from repro.sim.ensemble import EnsembleMultisetSimulation


@pytest.fixture(autouse=True)
def _fresh_warning_state():
    """Each test sees the once-per-process warning dedup empty."""
    reset_backend_warnings()
    yield
    reset_backend_warnings()


def _numba_missing():
    try:
        import numba  # noqa: F401
    except Exception:
        return True
    return False


# -- Registry API --------------------------------------------------------------


class TestRegistry:
    def test_shipped_backends_registered_in_order(self):
        names = backend_names()
        assert names[0] == DEFAULT_BACKEND == "numpy"
        assert set(names) == {"numpy", "numba", "python"}

    def test_numpy_and_python_always_available(self):
        assert "numpy" in available_backends()
        assert "python" in available_backends()

    def test_unknown_backend_raises_naming_known(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            get_backend("cuda")
        with pytest.raises(ValueError, match="'numpy'"):
            get_backend("cuda")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend(KernelBackend("numpy", lambda family: None))

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown engine family"):
            get_backend("numpy").make_kernels("gpu-agent")

    def test_report_rows(self):
        rows = {row["name"]: row for row in backend_report()}
        assert rows["numpy"]["available"]
        assert rows["numpy"]["default"]
        assert rows["numpy"]["reason"] is None
        assert rows["python"]["available"]
        assert not rows["python"]["default"]
        numba_row = rows["numba"]
        assert numba_row["available"] == (not _numba_missing())
        if _numba_missing():
            assert "numba is not importable" in numba_row["reason"]

    def test_every_family_served_by_numpy_and_python(self):
        for family in FAMILIES:
            for name in ("numpy", "python"):
                kernels = get_backend(name).make_kernels(family)
                assert kernels.name == name


# -- select_kernels resolution -------------------------------------------------


class TestSelectKernels:
    def test_default_resolves_to_numpy_silently(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            for requested in (None, "numpy"):
                name, kernels = select_kernels(requested, "batched-agent")
                assert name == "numpy"
                assert kernels.name == "numpy"

    def test_default_never_warns_even_when_undecodable(self):
        # The numpy hybrid handles undecodable shapes itself; requesting
        # the default must not probe, warn, or fall anywhere.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            name, _ = select_kernels(None, "batched-multiset",
                                     decodable=False)
            assert name == "numpy"

    def test_explicit_python_selected(self):
        name, kernels = select_kernels("python", "ensemble")
        assert name == "python"
        assert kernels.name == "python"

    def test_unknown_name_raises_not_warns(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            select_kernels("cuda", "batched-agent")

    def test_undecodable_shape_falls_back_with_one_warning(self):
        with pytest.warns(RuntimeWarning,
                          match="no block-decodable draw stream"):
            name, kernels = select_kernels("python", "batched-agent",
                                           decodable=False)
        assert name == "numpy"
        assert kernels.name == "numpy"

    def test_ensemble_ignores_decodability(self):
        # The ensemble draws through numpy's generator, not the decoded
        # Mersenne Twister stream, so shape gating does not apply.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            name, _ = select_kernels("python", "ensemble", decodable=False)
            assert name == "python"

    def test_factory_failure_falls_back_with_one_warning(self, monkeypatch):
        def exploding_factory(family):
            raise RuntimeError("LLVM went home")

        broken = KernelBackend("python", exploding_factory)
        monkeypatch.setitem(backends._REGISTRY, "python", broken)
        with pytest.warns(RuntimeWarning,
                          match="kernel construction failed: LLVM went home"):
            name, kernels = select_kernels("python", "batched-agent")
        assert name == "numpy"
        assert kernels.name == "numpy"

    def test_warning_fires_once_per_backend_and_reason(self):
        with pytest.warns(RuntimeWarning) as caught:
            select_kernels("python", "batched-agent", decodable=False)
            select_kernels("python", "batched-agent", decodable=False)
            select_kernels("python", "batched-multiset", decodable=False)
        assert len(caught) == 1
        reset_backend_warnings()
        with pytest.warns(RuntimeWarning):
            select_kernels("python", "batched-agent", decodable=False)

    @pytest.mark.skipif(not _numba_missing(),
                        reason="numba is installed here")
    def test_missing_numba_falls_back_with_one_warning(self):
        with pytest.warns(RuntimeWarning, match="numba is not importable"):
            name, kernels = select_kernels("numba", "batched-agent")
        assert name == "numpy"
        assert kernels.name == "numpy"

    def test_probed_out_backend_falls_back(self, monkeypatch):
        # The numba-missing path, simulated so it also runs on the CI
        # leg where numba *is* installed: a probe that reports the
        # backend ineligible must divert to numpy with one warning.
        gated = KernelBackend("numba", lambda family: None,
                              probe=lambda: "numba is not importable (test)")
        monkeypatch.setitem(backends._REGISTRY, "numba", gated)
        with pytest.warns(RuntimeWarning, match="numba is not importable"):
            name, kernels = select_kernels("numba", "batched-multiset")
        assert name == "numpy"
        assert kernels.name == "numpy"


# -- Engine-level fallback: bit identity plus exactly one warning --------------


def _run_agent(backend, n_warnings_expected, **kwargs):
    protocol = LeaderElection()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        sim = BatchedSimulation(protocol, [1] * kwargs.pop("n"),
                                seed=kwargs.pop("seed"), backend=backend)
        sim.run(5_000)
    runtime = [w for w in caught if issubclass(w.category, RuntimeWarning)]
    assert len(runtime) == n_warnings_expected
    return sim


class TestEngineFallback:
    def test_undecodable_population_matches_numpy(self):
        # n = 512: bit_length(512) != bit_length(511), so there is no
        # block-decodable draw stream and explicit non-default backends
        # must fall back — bit-identically, with exactly one warning.
        ref = _run_agent(None, 0, n=512, seed=99)
        assert ref.backend == "numpy"
        reset_backend_warnings()
        fell = _run_agent("python", 1, n=512, seed=99)
        assert fell.backend == "numpy"
        assert fell.states == ref.states
        assert fell.interactions == ref.interactions
        assert fell.last_change == ref.last_change

    @pytest.mark.skipif(not _numba_missing(),
                        reason="numba is installed here")
    def test_missing_numba_engine_matches_numpy(self):
        ref = _run_agent(None, 0, n=300, seed=42)
        reset_backend_warnings()
        fell = _run_agent("numba", 1, n=300, seed=42)
        assert fell.backend == "numpy"
        assert fell.states == ref.states
        assert fell.last_output_change == ref.last_output_change

    def test_jit_failure_mid_construction_matches_numpy(self, monkeypatch):
        def exploding_factory(family):
            raise RuntimeError("typing error in nopython frontend")

        ref = BatchedMultisetSimulation(majority_protocol(),
                                        {1: 40, 0: 61}, seed=7)
        ref.run(5_000)
        monkeypatch.setitem(
            backends._REGISTRY, "python",
            KernelBackend("python", exploding_factory))
        with pytest.warns(RuntimeWarning,
                          match="kernel construction failed"):
            fell = BatchedMultisetSimulation(majority_protocol(),
                                             {1: 40, 0: 61}, seed=7,
                                             backend="python")
        fell.run(5_000)
        assert fell.backend == "numpy"
        assert list(fell.counts.items()) == list(ref.counts.items())

    def test_default_engines_never_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            BatchedSimulation(LeaderElection(), [1] * 512, seed=3).run(200)
            BatchedMultisetSimulation(majority_protocol(), {1: 9, 0: 4},
                                      seed=3).run(200)
            EnsembleMultisetSimulation(LeaderElection(), {1: 16},
                                       trials=4, seed=3).run(200)


# -- Cross-backend identity spot checks ----------------------------------------


class TestCrossBackendIdentity:
    def test_ensemble_python_count_identical_to_numpy(self):
        # The ensemble contract is only statistical, but the span kernel
        # replays numpy's draws in the same order, so the shipped
        # backends are in fact count-identical — including the gap EMA
        # that steers the lockstep/windowed mode switch.
        seeds = list(range(40, 56))
        a = EnsembleMultisetSimulation(LeaderElection(), {1: 48},
                                       trials=16, seeds=seeds)
        b = EnsembleMultisetSimulation(LeaderElection(), {1: 48},
                                       trials=16, seeds=seeds,
                                       backend="python")
        assert (a.backend, b.backend) == ("numpy", "python")
        for _ in range(10):
            a.run(2_000)
            b.run(2_000)
            assert (a.counts == b.counts).all()
            assert (a.last_change == b.last_change).all()
        assert a._gap == b._gap

    def test_batched_python_bit_identical_mid_run_interleave(self):
        # Alternate step() and run() so chunk boundaries differ from the
        # fingerprint suite's fixed schedule.
        ref = BatchedMultisetSimulation(majority_protocol(), {1: 60, 0: 41},
                                        seed=11)
        alt = BatchedMultisetSimulation(majority_protocol(), {1: 60, 0: 41},
                                        seed=11, backend="python")
        for chunk in (1, 3, 500, 1, 10_000, 7):
            ref.run(chunk)
            alt.run(chunk)
            assert list(ref.counts.items()) == list(alt.counts.items())
            assert ref.interactions == alt.interactions
            assert ref.last_change == alt.last_change
