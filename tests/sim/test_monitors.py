"""Tests for the runtime invariant monitors on both engines."""

import pytest

from repro.core.population import complete_population
from repro.protocols.counting import Epidemic, count_to_five
from repro.sim.engine import Simulation
from repro.sim.monitors import (
    ConservationMonitor,
    FairnessBudgetMonitor,
    MonitorViolation,
    NoProgressWatchdog,
    OutputFlickerMonitor,
    StateContainmentMonitor,
    build_monitors,
    validate_monitor_spec,
)
from repro.sim.multiset_engine import MultisetSimulation
from repro.sim.schedulers import StallingScheduler


class TestAttachment:
    def test_unmonitored_hot_path_untouched(self):
        sim = Simulation(Epidemic(), [1, 0, 0], seed=0)
        assert "step" not in sim.__dict__  # class attribute only
        assert sim.monitors == []

    def test_attach_swaps_instance_step(self):
        sim = Simulation(Epidemic(), [1, 0, 0], seed=0,
                         monitors=[ConservationMonitor()])
        assert sim.__dict__["step"] == sim._monitored_step
        assert len(sim.monitors) == 1

    def test_monitored_trajectory_identical(self):
        plain = Simulation(Epidemic(), [1, 0, 0, 0], seed=42)
        watched = Simulation(Epidemic(), [1, 0, 0, 0], seed=42,
                             monitors=[ConservationMonitor(),
                                       StateContainmentMonitor()])
        plain.run(500)
        watched.run(500)
        assert plain.states == watched.states
        assert plain.interactions == watched.interactions

    def test_clean_run_raises_nothing(self):
        monitors = build_monitors(["conservation", "containment",
                                   "fairness:budget=200",
                                   "watchdog:steps=200"])
        sim = MultisetSimulation(Epidemic(), {1: 2, 0: 6}, seed=0,
                                 monitors=monitors)
        sim.run(2_000)  # converges and goes silent; no monitor fires


class TestConservation:
    def test_agent_engine_detects_lost_agent(self):
        sim = Simulation(Epidemic(), [1, 0, 0], seed=0,
                         monitors=[ConservationMonitor()])
        sim.states.append(0)  # an agent the model never admitted
        with pytest.raises(MonitorViolation) as excinfo:
            sim.run(1)
        assert excinfo.value.monitor == "conservation"
        assert excinfo.value.detail["expected"] == 3

    def test_multiset_engine_detects_duplicated_agent(self):
        sim = MultisetSimulation(Epidemic(), {1: 2, 0: 2}, seed=0,
                                 monitors=[ConservationMonitor()])
        state = next(iter(sim.counts))
        sim.counts[state] += 1
        with pytest.raises(MonitorViolation) as excinfo:
            sim.run(1)
        assert excinfo.value.monitor == "conservation"

    def test_crashes_conserve(self):
        sim = Simulation(Epidemic(), [1, 0, 0, 0], seed=0,
                         monitors=[ConservationMonitor()])
        sim.crash(2)
        sim.run(200)  # crashed agents still count toward n


class TestContainment:
    def test_agent_engine_detects_alien_state(self):
        # Crashing the corrupted agent freezes the alien state, so it
        # survives whatever the first encounter is.
        sim = Simulation(Epidemic(), [1, 0, 0], seed=0,
                         monitors=[StateContainmentMonitor(check_every=1)])
        sim.set_state(1, 99)
        sim.crash(1)
        with pytest.raises(MonitorViolation) as excinfo:
            sim.run(1)
        assert excinfo.value.monitor == "containment"
        assert excinfo.value.detail == {"agent": 1, "state": "99"}

    def test_multiset_engine_detects_alien_state(self):
        sim = MultisetSimulation(Epidemic(), {1: 2, 0: 2}, seed=0,
                                 monitors=[StateContainmentMonitor()])
        sim.counts[99] = sim.counts.pop(next(iter(sim.counts)))
        with pytest.raises(MonitorViolation) as excinfo:
            sim.run(1)
        assert excinfo.value.monitor == "containment"

    def test_explicit_allowed_set(self):
        monitor = StateContainmentMonitor(allowed={0}, check_every=1)
        sim = Simulation(Epidemic(), [0, 0, 1], seed=0, monitors=[monitor])
        with pytest.raises(MonitorViolation):
            sim.run(1)


class TestFlicker:
    def test_inert_until_armed(self):
        sim = Simulation(Epidemic(), [1, 0, 0, 0], seed=0,
                         monitors=[OutputFlickerMonitor()])
        sim.run(2_000)  # outputs change plenty; monitor never armed

    def test_agent_engine_fires_on_post_arm_change(self):
        monitor = OutputFlickerMonitor()
        sim = Simulation(Epidemic(), [0, 0, 0], seed=0, monitors=[monitor])
        sim.run(10)
        monitor.arm(sim)
        sim.set_state(0, 1)  # output flips after claimed stabilization
        with pytest.raises(MonitorViolation) as excinfo:
            sim.run(5)
        assert excinfo.value.monitor == "flicker"
        assert excinfo.value.detail["stabilized_at"] == 10

    def test_multiset_engine_fires_on_histogram_change(self):
        monitor = OutputFlickerMonitor()
        sim = MultisetSimulation(Epidemic(), {0: 4}, seed=0,
                                 monitors=[monitor])
        sim.run(10)
        monitor.arm(sim)
        sim.counts.pop(0)
        sim.counts[1] = 4
        with pytest.raises(MonitorViolation) as excinfo:
            sim.run(1)
        assert excinfo.value.monitor == "flicker"


class TestFairnessBudget:
    def test_fires_on_starved_productive_pair(self):
        pop = complete_population(4)
        protocol = Epidemic()
        sim = Simulation(protocol, [1, 0, 0, 0], population=pop,
                         scheduler=StallingScheduler(pop, protocol), seed=0,
                         monitors=[FairnessBudgetMonitor(budget=100)])
        with pytest.raises(MonitorViolation) as excinfo:
            sim.run(10_000)
        assert excinfo.value.monitor == "fairness"
        assert excinfo.value.detail["budget"] == 100
        assert sim.interactions <= 200

    def test_silent_configuration_resets_budget(self):
        sim = MultisetSimulation(Epidemic(), {1: 4}, seed=0,
                                 monitors=[FairnessBudgetMonitor(budget=50)])
        sim.run(1_000)  # silent from the start: nothing to starve


class TestWatchdog:
    def test_fires_on_frozen_nonsilent_run(self):
        pop = complete_population(4)
        protocol = Epidemic()
        sim = Simulation(protocol, [1, 0, 0, 0], population=pop,
                         scheduler=StallingScheduler(pop, protocol), seed=0,
                         monitors=[NoProgressWatchdog(max_idle=100)])
        with pytest.raises(MonitorViolation) as excinfo:
            sim.run(10_000)
        assert excinfo.value.monitor == "watchdog"

    def test_silent_run_is_allowed(self):
        sim = MultisetSimulation(Epidemic(), {1: 4}, seed=0,
                                 monitors=[NoProgressWatchdog(max_idle=50)])
        sim.run(1_000)

    def test_allow_silent_false_trips_on_termination(self):
        sim = MultisetSimulation(
            Epidemic(), {1: 4}, seed=0,
            monitors=[NoProgressWatchdog(max_idle=50, allow_silent=False)])
        with pytest.raises(MonitorViolation):
            sim.run(1_000)

    def test_wall_clock_budget(self):
        sim = Simulation(Epidemic(), [1, 0, 0, 0], seed=0,
                         monitors=[NoProgressWatchdog(wall_clock=1e-9,
                                                      check_every=8)])
        with pytest.raises(MonitorViolation) as excinfo:
            sim.run(1_000)
        assert "elapsed" in excinfo.value.detail

    def test_needs_some_budget(self):
        with pytest.raises(ValueError):
            NoProgressWatchdog()


class TestViolationPayload:
    def test_carries_reproduction_context(self):
        sim = Simulation(Epidemic(), [1, 0, 0], seed=0,
                         monitors=[ConservationMonitor()])
        sim.monitor_context = {"protocol": "epidemic", "engine_seed": 0}
        sim.states.append(0)
        with pytest.raises(MonitorViolation) as excinfo:
            sim.run(1)
        violation = excinfo.value
        assert violation.context == {"protocol": "epidemic", "engine_seed": 0}
        assert violation.to_dict()["context"]["protocol"] == "epidemic"
        assert "context" not in violation.to_dict(include_context=False)

    def test_message_names_monitor_and_step(self):
        violation = MonitorViolation("fairness", 42, {"budget": 7})
        assert "[fairness]" in str(violation)
        assert "42" in str(violation)


class TestSpecs:
    def test_build_monitors_round_trip(self):
        monitors = build_monitors([
            "conservation:check=4", "containment:check=8", "flicker",
            "fairness:budget=123", "watchdog:steps=99,check=16"])
        kinds = [m.name for m in monitors]
        assert kinds == ["conservation", "containment", "flicker",
                         "fairness", "watchdog"]
        assert monitors[0].check_every == 4
        assert monitors[3].budget == 123
        assert monitors[4].max_idle == 99

    @pytest.mark.parametrize("bad", [
        "warp", "conservation:budget=1", "fairness:budget=x",
        "watchdog:steps", "flicker:check=1"])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            validate_monitor_spec(bad)

    def test_count_to_five_containment_is_quiet(self):
        monitors = build_monitors(["conservation", "containment"])
        sim = MultisetSimulation(count_to_five(), {1: 5}, seed=1,
                                 monitors=monitors)
        sim.run(3_000)
