"""Tests for the lockstep ensemble engine.

The ensemble engine's contract is *statistical* equivalence with the
scalar multiset engine: same protocol, same inputs, same stopping rules,
same convergence-time *distribution* — but not the same bit-for-bit
trajectories, because the fleet shares one numpy bit generator.  The
``TestStatisticalEquivalence`` suite pins the contract down with
two-sample Kolmogorov-Smirnov tests on convergence-time samples; see the
class docstring for the tolerance and what it can and cannot detect.
"""

import numpy as np
import pytest

from repro.protocols.counting import CountToK, Epidemic, count_to_five
from repro.protocols.leader import FOLLOWER, LEADER, LeaderElection
from repro.protocols.majority import majority_protocol
from repro.sim.convergence import run_until_silent
from repro.sim.ensemble import (
    EnsembleFaults,
    EnsembleMultisetSimulation,
    run_ensemble_until_correct_stable,
    run_ensemble_until_quiescent,
    run_ensemble_until_silent,
)
from repro.sim.multiset_engine import MultisetSimulation


class TestConstruction:
    def test_from_input_counts(self):
        ens = EnsembleMultisetSimulation(count_to_five(), {0: 3, 1: 2},
                                         trials=4, seed=1)
        assert ens.n == 5
        assert ens.trials == 4
        for t in range(4):
            assert ens.trial_counts(t) == {0: 3, 1: 2}

    def test_from_state_counts(self):
        ens = EnsembleMultisetSimulation(count_to_five(),
                                         state_counts={4: 1, 0: 3},
                                         trials=2, seed=1)
        assert ens.trial_counts(0) == {4: 1, 0: 3}

    def test_both_inputs_rejected(self):
        with pytest.raises(ValueError):
            EnsembleMultisetSimulation(count_to_five(), {0: 3},
                                       state_counts={0: 3}, trials=2, seed=1)

    def test_neither_input_rejected(self):
        with pytest.raises(ValueError):
            EnsembleMultisetSimulation(count_to_five(), trials=2, seed=1)

    def test_zero_trials_rejected(self):
        with pytest.raises(ValueError):
            EnsembleMultisetSimulation(count_to_five(), {0: 3, 1: 2},
                                       trials=0, seed=1)

    def test_seed_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="seeds has 2"):
            EnsembleMultisetSimulation(count_to_five(), {0: 3, 1: 2},
                                       trials=3, seeds=[1, 2])

    def test_bad_symbol_rejected(self):
        with pytest.raises(ValueError):
            EnsembleMultisetSimulation(count_to_five(), {9: 3},
                                       trials=2, seed=1)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            EnsembleMultisetSimulation(count_to_five(), {1: 1},
                                       trials=2, seed=1)

    def test_explicit_seeds_are_kept(self):
        ens = EnsembleMultisetSimulation(count_to_five(), {0: 3, 1: 2},
                                         trials=3, seeds=[7, 8, 9])
        assert ens.seeds == [7, 8, 9]


class TestAdvancement:
    def test_population_conserved_across_modes(self, seed):
        # Leader election starts reactive-dense (lockstep mode) and ends
        # silent (windowed mode); the run crosses both inner loops.
        ens = EnsembleMultisetSimulation(LeaderElection(), {1: 64},
                                         trials=8, seed=seed)
        ens.run(8_000)
        assert (ens.counts.sum(axis=1) == 64).all()
        assert (ens.counts >= 0).all()
        assert (ens.interactions == 8_000).all()

    def test_deterministic_under_seeds(self):
        seeds = list(range(10, 16))
        a = EnsembleMultisetSimulation(count_to_five(), {0: 6, 1: 6},
                                       trials=6, seeds=seeds)
        b = EnsembleMultisetSimulation(count_to_five(), {0: 6, 1: 6},
                                       trials=6, seeds=seeds)
        a.run(2_000)
        b.run(2_000)
        assert (a.counts == b.counts).all()
        assert (a.last_change == b.last_change).all()

    def test_run_to_staggered_targets(self, seed):
        ens = EnsembleMultisetSimulation(count_to_five(), {0: 6, 1: 6},
                                         trials=4, seed=seed)
        targets = np.array([100, 350, 720, 1_500])
        ens.run_to(targets)
        assert (ens.interactions == targets).all()

    def test_deactivated_trials_freeze(self, seed):
        ens = EnsembleMultisetSimulation(count_to_five(), {0: 6, 1: 6},
                                         trials=3, seed=seed)
        ens.deactivate([1])
        ens.run(500)
        assert ens.interactions[1] == 0
        assert ens.interactions[0] == ens.interactions[2] == 500

    def test_trial_rows_diverge(self, seed):
        # Independent trials must not mirror each other's trajectories.
        ens = EnsembleMultisetSimulation(majority_protocol(), {1: 30, 0: 20},
                                         trials=16, seed=seed)
        ens.run(300)
        assert len({tuple(row) for row in ens.counts}) > 1


class TestSilentMask:
    def test_silent_configuration(self):
        ens = EnsembleMultisetSimulation(
            LeaderElection(), state_counts={LEADER: 1, FOLLOWER: 4},
            trials=1, seed=1)
        assert ens.silent_mask([0]).all()

    def test_reactive_off_diagonal_pair(self):
        # CountToK(3): a (2, 1) meeting aggregates, so not silent.
        ens = EnsembleMultisetSimulation(
            CountToK(3), state_counts={2: 1, 1: 1}, trials=1, seed=1)
        assert not ens.silent_mask([0]).any()

    def test_diagonal_needs_two_agents(self):
        # (L, L) is reactive, but with a single leader the diagonal pair
        # is not enabled: one leader plus followers is silent...
        one = EnsembleMultisetSimulation(
            LeaderElection(), state_counts={LEADER: 1, FOLLOWER: 1},
            trials=1, seed=1)
        assert one.silent_mask([0]).all()
        # ...while two leaders are not.
        two = EnsembleMultisetSimulation(
            LeaderElection(), state_counts={LEADER: 2}, trials=1, seed=1)
        assert not two.silent_mask([0]).any()


class TestSilentDriver:
    def test_all_trials_elect_one_leader(self, seed):
        n = 32
        ens = EnsembleMultisetSimulation(LeaderElection(), {1: n},
                                         trials=16, seed=seed)
        results = run_ensemble_until_silent(ens, max_steps=500_000)
        assert len(results) == 16
        for t, r in enumerate(results):
            assert r.stopped
            assert 0 < r.converged_at <= r.interactions
            assert ens.trial_counts(t)[LEADER] == 1

    def test_mean_hitting_time_tracks_paper_curve(self, seed):
        # Sect. 6: expected (n-1)^2 interactions to one leader.
        n = 32
        ens = EnsembleMultisetSimulation(LeaderElection(), {1: n},
                                         trials=64, seed=seed)
        results = run_ensemble_until_silent(ens, max_steps=500_000)
        mean = np.mean([r.converged_at for r in results])
        assert 0.6 * (n - 1) ** 2 < mean < 1.6 * (n - 1) ** 2

    def test_budget_exhaustion_reported(self, seed):
        # count-to-five with 4 ones never goes silent: (q0, q4) swaps
        # forever (the scalar driver's own budget fixture).
        ens = EnsembleMultisetSimulation(count_to_five(), {1: 4, 0: 4},
                                         trials=4, seed=seed)
        results = run_ensemble_until_silent(ens, max_steps=3_000)
        assert all(not r.stopped for r in results)
        assert all(r.interactions >= 3_000 for r in results)


class TestQuiescentDriver:
    def test_epidemic_reaches_everyone(self, seed):
        ens = EnsembleMultisetSimulation(Epidemic(), {1: 1, 0: 31},
                                         trials=8, seed=seed)
        results = run_ensemble_until_quiescent(ens, patience=2_000,
                                               max_steps=500_000)
        for r in results:
            assert r.stopped
            assert r.output == 1
            assert r.interactions - r.converged_at >= 2_000

    def test_budget_exhaustion_reported(self, seed):
        ens = EnsembleMultisetSimulation(majority_protocol(), {0: 6, 1: 6},
                                         trials=4, seed=seed)
        results = run_ensemble_until_quiescent(ens, patience=10**9,
                                               max_steps=2_000)
        assert all(not r.stopped for r in results)


class TestCorrectStableDriver:
    def test_majority_converges_to_truth(self, seed):
        ens = EnsembleMultisetSimulation(majority_protocol(), {0: 8, 1: 24},
                                         trials=8, seed=seed)
        results = run_ensemble_until_correct_stable(ens, 1,
                                                    max_steps=2_000_000)
        for r in results:
            assert r.stopped
            assert r.output == 1
            assert r.converged_at <= r.interactions

    def test_impossible_expected_output_runs_to_budget(self, seed):
        ens = EnsembleMultisetSimulation(majority_protocol(), {0: 2, 1: 10},
                                         trials=2, seed=seed)
        results = run_ensemble_until_correct_stable(ens, 7, max_steps=1_000)
        assert all(not r.stopped for r in results)


class TestOutputTracking:
    def test_untracked_histogram_matches_tracked(self, seed):
        seeds = list(range(20, 26))
        kwargs = dict(trials=6, seeds=seeds)
        tracked = EnsembleMultisetSimulation(majority_protocol(),
                                             {1: 12, 0: 8}, **kwargs)
        bare = EnsembleMultisetSimulation(majority_protocol(),
                                          {1: 12, 0: 8},
                                          track_outputs=False, **kwargs)
        tracked.run(800)
        bare.run(800)
        assert bare.output_hist is None
        assert (tracked.counts == bare.counts).all()
        for t in range(6):
            assert tracked.output_counts(t) == bare.output_counts(t)
            assert tracked.unanimous_output(t) == bare.unanimous_output(t)

    def test_silent_driver_works_untracked(self, seed):
        ens = EnsembleMultisetSimulation(LeaderElection(), {1: 16},
                                         trials=4, seed=seed,
                                         track_outputs=False)
        results = run_ensemble_until_silent(ens, max_steps=200_000)
        assert all(r.stopped for r in results)

    def test_output_drivers_require_tracking(self, seed):
        ens = EnsembleMultisetSimulation(majority_protocol(), {1: 8, 0: 4},
                                         trials=2, seed=seed,
                                         track_outputs=False)
        with pytest.raises(ValueError, match="track_outputs"):
            run_ensemble_until_quiescent(ens, patience=100, max_steps=1_000)
        with pytest.raises(ValueError, match="track_outputs"):
            run_ensemble_until_correct_stable(ens, 1, max_steps=1_000)


class TestScalarReplay:
    def test_twin_reaches_same_verdict(self, seed, kernel_backend):
        # The replay contract: an ensemble trial's seed, fed back through
        # the scalar MultisetSimulation, reproduces the trial's verdict
        # (statistically equivalent trajectory, same stopped/output).
        ens = EnsembleMultisetSimulation(CountToK(3), {1: 5, 0: 11},
                                         trials=8, seed=seed,
                                         backend=kernel_backend)
        assert ens.backend == kernel_backend
        results = run_ensemble_until_silent(ens, max_steps=500_000)
        for t in (0, 3, 7):
            twin = ens.scalar_twin(t)
            assert twin.n == ens.n
            replay = run_until_silent(twin, max_steps=500_000)
            assert replay.stopped == results[t].stopped
            assert replay.output == results[t].output
            assert replay.output == 1  # five ones >= 3: predicate true

    def test_twin_preserves_state_counts_construction(self):
        ens = EnsembleMultisetSimulation(
            LeaderElection(), state_counts={LEADER: 3, FOLLOWER: 2},
            trials=2, seeds=[5, 6])
        twin = ens.scalar_twin(1)
        assert twin.multiset() == ens.multiset(1)


class TestStatisticalEquivalence:
    """KS tests pinning down the statistical-equivalence contract.

    Both engines sample the identical pair law — ordered agent pairs
    without replacement, i.e. state pair ``(p, q)`` with probability
    ``c_p (c_q - [p = q]) / (n (n - 1))`` — from different bit streams,
    so their convergence-time samples must look like two draws from one
    distribution.  Tolerance: with fixed seeds the tests are
    deterministic; they assert ``ks_2samp`` p-value > 1e-3 on ~100-trial
    samples, which reliably catches the gross sampling-law bugs this
    suite exists for (with-replacement draws, a missing self-pair
    exclusion, biased first-hit discards in the windowed mode — all of
    which shift the (n-1)^2 election curve by tens of percent) while
    keeping the false-alarm probability of an honest engine at 0.1% per
    seed choice.  O(1/n) distortions below KS resolution at this sample
    size are bounded instead by the exactness argument in
    ``repro/sim/ensemble.py``'s docstring.
    """

    def _scalar_times(self, protocol_factory, counts, seeds, max_steps):
        times = []
        for s in seeds:
            sim = MultisetSimulation(protocol_factory(), counts, seed=s)
            result = run_until_silent(sim, max_steps=max_steps)
            assert result.stopped
            times.append(result.converged_at)
        return times

    def _ensemble_times(self, protocol_factory, counts, seeds, max_steps,
                        backend=None):
        ens = EnsembleMultisetSimulation(protocol_factory(), counts,
                                         trials=len(seeds), seeds=seeds,
                                         backend=backend)
        results = run_ensemble_until_silent(ens, max_steps=max_steps)
        assert all(r.stopped for r in results)
        return [r.converged_at for r in results]

    def test_leader_election_hitting_times(self, kernel_backend):
        from scipy.stats import ks_2samp

        n, trials, budget = 48, 128, 1_000_000
        fast = self._ensemble_times(LeaderElection, {1: n},
                                    list(range(1_000, 1_000 + trials)),
                                    budget, backend=kernel_backend)
        slow = self._scalar_times(LeaderElection, {1: n},
                                  list(range(2_000, 2_000 + trials)),
                                  budget)
        assert ks_2samp(fast, slow).pvalue > 1e-3

    def test_threshold_predicate_times(self, kernel_backend):
        from scipy.stats import ks_2samp

        # CountToK(3) is the Sect. 4 threshold predicate "x_1 >= 3".
        counts = {1: 5, 0: 27}
        trials, budget = 96, 1_000_000
        fast = self._ensemble_times(lambda: CountToK(3), counts,
                                    list(range(3_000, 3_000 + trials)),
                                    budget, backend=kernel_backend)
        slow = self._scalar_times(lambda: CountToK(3), counts,
                                  list(range(4_000, 4_000 + trials)),
                                  budget)
        assert ks_2samp(fast, slow).pvalue > 1e-3


class TestEnsembleFaults:
    def test_descriptor_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            EnsembleFaults("targeted-crash", 0.1)
        with pytest.raises(ValueError, match="at_step"):
            EnsembleFaults("crash-at", 3)
        with pytest.raises(ValueError, match="intensity"):
            EnsembleFaults("omission-rate", 1.5)
        with pytest.raises(ValueError, match="at_step only"):
            EnsembleFaults("omission-rate", 0.5, at_step=10)

    def test_population_conserved_under_every_kind(self, seed):
        for faults in (EnsembleFaults("crash-rate", 0.002),
                       EnsembleFaults("corruption-rate", 0.01),
                       EnsembleFaults("omission-rate", 0.3),
                       EnsembleFaults("crash-at", 6, at_step=500)):
            ens = EnsembleMultisetSimulation(majority_protocol(),
                                             {1: 40, 0: 24}, trials=8,
                                             seed=seed, faults=faults)
            ens.run(4_000)
            assert (ens.counts.sum(axis=1) + ens.dead == 64).all()
            assert (ens.counts >= 0).all()
            assert (ens.interactions == 4_000).all()

    def test_fault_counters(self, seed):
        ens = EnsembleMultisetSimulation(
            LeaderElection(), {1: 64}, trials=8, seed=seed,
            faults=EnsembleFaults("crash-at", 5, at_step=100))
        ens.run(2_000)
        assert (ens.dead == 5).all()
        assert (ens.crashes == 5).all()
        assert all(ens.n_alive(t) == 59 for t in range(8))

    def test_deterministic_under_seeds_and_fault_seeds(self):
        kwargs = dict(trials=6, seeds=list(range(10, 16)),
                      fault_seeds=list(range(90, 96)),
                      faults=EnsembleFaults("corruption-rate", 0.02))
        a = EnsembleMultisetSimulation(count_to_five(), {0: 6, 1: 6},
                                       **kwargs)
        b = EnsembleMultisetSimulation(count_to_five(), {0: 6, 1: 6},
                                       **kwargs)
        a.run(2_000)
        b.run(2_000)
        assert (a.counts == b.counts).all()
        assert (a.corruptions == b.corruptions).all()
        assert (a.dead == b.dead).all()

    def test_scalar_twin_carries_the_plan(self, seed):
        ens = EnsembleMultisetSimulation(
            LeaderElection(), {1: 32}, trials=4, seed=seed,
            faults=EnsembleFaults("crash-at", 3, at_step=50))
        ens.run(1_000)
        twin = ens.scalar_twin(1)
        assert twin.faults is not None
        twin.run(1_000)
        assert twin.dead == 3

    def test_monitors_pass_on_honest_faulted_run(self, seed):
        from repro.sim.monitors import build_monitors

        ens = EnsembleMultisetSimulation(
            majority_protocol(), {1: 30, 0: 20}, trials=6, seed=seed,
            faults=EnsembleFaults("crash-rate", 0.001),
            monitors=build_monitors(["conservation", "containment"]))
        ens.run(5_000)
        assert ens.violations == {}

    def test_containment_violation_deactivates_trial(self, seed):
        from repro.sim.monitors import StateContainmentMonitor

        # An artificially narrow allowed set: majority's initial states
        # only, so the first reactive interaction in any trial trips the
        # monitor.  Violated trials freeze; the run itself survives.
        protocol = majority_protocol()
        allowed = {protocol.initial_state(1), protocol.initial_state(0)}
        ens = EnsembleMultisetSimulation(
            protocol, {1: 30, 0: 20}, trials=4, seed=seed,
            monitors=[StateContainmentMonitor(allowed)])
        ens.run(2_000)
        assert set(ens.violations) == {0, 1, 2, 3}
        for violation in ens.violations.values():
            assert violation.monitor == "containment"
        assert (ens.interactions < 2_000).all()


class TestFaultedStatisticalEquivalence:
    """KS twin of TestStatisticalEquivalence under active fault plans.

    The per-trial fault sampling (shared numpy generator, positional
    dead slots, clamped scatters) must reproduce the *scalar* faulted
    law — :class:`FaultPlan` driving a :class:`MultisetSimulation` —
    distributionally.  Same tolerance rationale as the fault-free
    suite: p > 1e-3 on ~100-trial samples catches the gross law bugs
    (mis-scaled dead-pair probability, omission applied before the
    dead-pair veto, fault RNG leaking into the pair stream).
    """

    def _scalar_times(self, protocol_factory, counts, seed_pairs, faults,
                      max_steps):
        times = []
        for s, fs in seed_pairs:
            sim = MultisetSimulation(protocol_factory(), counts, seed=s,
                                     faults=faults.build_plan(fs))
            result = run_until_silent(sim, max_steps=max_steps)
            assert result.stopped
            times.append(result.converged_at)
        return times

    def _ensemble_times(self, protocol_factory, counts, seed_pairs, faults,
                        max_steps):
        ens = EnsembleMultisetSimulation(
            protocol_factory(), counts, trials=len(seed_pairs),
            seeds=[s for s, _ in seed_pairs],
            fault_seeds=[fs for _, fs in seed_pairs], faults=faults)
        results = run_ensemble_until_silent(ens, max_steps=max_steps)
        assert all(r.stopped for r in results)
        return [r.converged_at for r in results]

    def _ks_case(self, faults, *, n=48, trials=96, budget=2_000_000):
        from scipy.stats import ks_2samp

        fast = self._ensemble_times(
            LeaderElection, {1: n},
            [(5_000 + i, 15_000 + i) for i in range(trials)], faults,
            budget)
        slow = self._scalar_times(
            LeaderElection, {1: n},
            [(6_000 + i, 16_000 + i) for i in range(trials)], faults,
            budget)
        assert ks_2samp(fast, slow).pvalue > 1e-3

    def test_omission_slowed_election_times(self):
        self._ks_case(EnsembleFaults("omission-rate", 0.5))

    def test_crash_at_election_times(self):
        self._ks_case(EnsembleFaults("crash-at", 8, at_step=50))

    def test_corruption_election_times(self):
        self._ks_case(EnsembleFaults("corruption-rate", 0.005))
