"""The fairness condition has teeth: an unfair adversary defeats
stable computation (motivates the Sect. 3.1 definition)."""

from repro.core.population import complete_population
from repro.protocols.counting import count_to_five
from repro.protocols.majority import majority_protocol
from repro.sim.engine import Simulation
from repro.sim.schedulers import StallingScheduler


class TestStallingAdversary:
    def test_count_to_five_never_alerts(self, seed):
        """Five 1-inputs should stabilize to 1 under fairness; the
        stalling adversary freezes the run after the first merge."""
        protocol = count_to_five()
        population = complete_population(8)
        sim = Simulation(protocol, [1, 1, 1, 1, 1, 0, 0, 0],
                         population=population,
                         scheduler=StallingScheduler(population, protocol),
                         seed=seed)
        sim.run(20_000)
        assert sim.unanimous_output() == 0  # wrong answer, forever
        # The configuration froze: a no-op pair exists and is replayed.
        frozen = list(sim.states)
        sim.run(5_000)
        assert sim.states == frozen

    def test_majority_stalls_before_leader_unique(self, seed):
        """The Lemma 5 protocol needs leader encounters; the adversary can
        avoid them as soon as any no-op pair exists."""
        protocol = majority_protocol()
        population = complete_population(6)
        sim = Simulation(protocol, [1, 1, 1, 1, 0, 0],
                         population=population,
                         scheduler=StallingScheduler(population, protocol),
                         seed=seed)
        sim.run(20_000)
        leaders = sum(1 for s in sim.states if s[0] == 1)
        # Follower/follower pairs are no-ops, so beyond the very first
        # steps nothing ever changes: more than one leader survives.
        assert leaders >= 2

    def test_fair_schedule_recovers(self, seed):
        """Same initial condition, fair (uniform) scheduling: correct."""
        protocol = count_to_five()
        sim = Simulation(protocol, [1, 1, 1, 1, 1, 0, 0, 0], seed=seed)
        sim.run_until(lambda s: s.unanimous_output() == 1,
                      max_steps=500_000, check_every=20)
        assert sim.unanimous_output() == 1
