"""Tests for the agent-array simulation engine."""

import pytest

from repro.core.population import Population, line_population
from repro.protocols.counting import Epidemic, count_to_five
from repro.protocols.leader import LEADER, LeaderElection
from repro.sim.engine import Simulation, simulate_counts
from repro.util.multiset import FrozenMultiset


class TestConstruction:
    def test_inputs_build_initial_states(self):
        sim = Simulation(count_to_five(), [0, 1, 1], seed=0)
        assert sim.states == [0, 1, 1]

    def test_states_argument(self):
        sim = Simulation(count_to_five(), states=[4, 0], seed=0)
        assert sim.states == [4, 0]

    def test_both_arguments_rejected(self):
        with pytest.raises(ValueError):
            Simulation(count_to_five(), [0, 1], states=[0, 1])

    def test_neither_argument_rejected(self):
        with pytest.raises(ValueError):
            Simulation(count_to_five())

    def test_bad_symbol_rejected(self):
        with pytest.raises(ValueError):
            Simulation(count_to_five(), [0, 7])

    def test_population_size_mismatch(self):
        with pytest.raises(ValueError):
            Simulation(count_to_five(), [0, 1, 1],
                       population=line_population(4))

    def test_too_small(self):
        with pytest.raises(ValueError):
            Simulation(count_to_five(), [1])


class TestStepping:
    def test_deterministic_under_seed(self):
        a = Simulation(count_to_five(), [1] * 8 + [0] * 4, seed=7)
        b = Simulation(count_to_five(), [1] * 8 + [0] * 4, seed=7)
        a.run(500)
        b.run(500)
        assert a.states == b.states
        assert a.interactions == b.interactions == 500

    def test_step_returns_changed_flag(self):
        sim = Simulation(Epidemic(), [0, 0], seed=1)
        assert sim.step() is False  # nothing can change

    def test_interaction_counter(self):
        sim = Simulation(Epidemic(), [0, 1, 0], seed=1)
        sim.run(100)
        assert sim.interactions == 100

    def test_outputs_track_states(self, seed):
        sim = Simulation(Epidemic(), [1, 0, 0, 0], seed=seed)
        sim.run_until(lambda s: s.unanimous_output() == 1,
                      max_steps=10_000, check_every=1)
        assert sim.outputs() == (1, 1, 1, 1)

    def test_last_output_change_monotone(self, seed):
        sim = Simulation(Epidemic(), [1] + [0] * 9, seed=seed)
        sim.run(5000)
        final_change = sim.last_output_change
        sim.run(1000)
        assert sim.last_output_change == final_change  # all ones already


class TestViews:
    def test_multiset_view(self, seed):
        sim = Simulation(count_to_five(), [1, 1, 0], seed=seed)
        assert sim.multiset() == FrozenMultiset({1: 2, 0: 1})

    def test_configuration_snapshot_is_immutable_copy(self, seed):
        sim = Simulation(count_to_five(), [1, 1, 0], seed=seed)
        snapshot = sim.configuration()
        sim.run(100)
        assert snapshot.states == (1, 1, 0)

    def test_output_counts(self):
        sim = Simulation(count_to_five(), states=[5, 5, 0], seed=0)
        assert sim.output_counts() == {1: 2, 0: 1}

    def test_unanimous_output(self):
        sim = Simulation(count_to_five(), states=[5, 5], seed=0)
        assert sim.unanimous_output() == 1
        sim2 = Simulation(count_to_five(), states=[5, 0], seed=0)
        assert sim2.unanimous_output() is None


class TestRunUntil:
    def test_condition_met(self, seed):
        sim = Simulation(LeaderElection(), [1] * 6, seed=seed)
        met = sim.run_until(
            lambda s: sum(1 for st in s.states if st == LEADER) == 1,
            max_steps=50_000)
        assert met

    def test_budget_exhausted(self, seed):
        sim = Simulation(Epidemic(), [0] * 5, seed=seed)
        met = sim.run_until(lambda s: s.unanimous_output() == 1, max_steps=100)
        assert not met
        assert sim.interactions == 100

    def test_immediate_condition_runs_nothing(self, seed):
        sim = Simulation(Epidemic(), [1, 1], seed=seed)
        met = sim.run_until(lambda s: True, max_steps=100)
        assert met
        assert sim.interactions == 0


class TestRestrictedGraph:
    def test_edges_respected(self, seed):
        # Directed edge (0, 1) only: agent 0 always initiator.
        pop = Population(2, [(0, 1)])
        p = count_to_five()
        sim = Simulation(p, [1, 1], population=pop, seed=seed)
        sim.run(50)
        # delta(1, 1) = (2, 0); further (2, 0) no-ops. Never (0, 2).
        assert sim.states == [2, 0]


class TestSimulateCounts:
    def test_layout(self, seed):
        sim = simulate_counts(count_to_five(), {0: 2, 1: 3}, seed=seed)
        assert sorted(sim.states) == [0, 0, 1, 1, 1]

    def test_negative_count_rejected(self, seed):
        with pytest.raises(ValueError):
            simulate_counts(count_to_five(), {0: -1, 1: 3}, seed=seed)
