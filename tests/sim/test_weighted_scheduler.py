"""Tests for weighted sampling (Sect. 8: "weighted sampling").

The paper conjectures that bounded positive state-dependent weights do not
change what is stably computable.  These tests exercise the mechanism and
support the conjecture empirically: weighted runs of the library protocols
reach the same verdicts as uniform runs.
"""

import random
from collections import Counter

import pytest

from repro.protocols.counting import count_to_five
from repro.protocols.majority import majority_protocol
from repro.protocols.remainder import parity_protocol
from repro.sim.convergence import run_until_quiescent
from repro.sim.engine import Simulation, simulate_counts
from repro.sim.schedulers import WeightedPairScheduler


class TestMechanism:
    def test_uniform_weights_are_uniform(self):
        sched = WeightedPairScheduler(4, weight=lambda s: 1.0)
        rng = random.Random(0)
        states = ["a"] * 4
        counts = Counter(sched.next_encounter(states, rng)
                         for _ in range(24_000))
        assert len(counts) == 12
        for count in counts.values():
            assert abs(count - 2000) < 350

    def test_never_self_pair(self):
        sched = WeightedPairScheduler(5, weight=lambda s: 1.0 + s)
        rng = random.Random(1)
        states = [0, 1, 2, 3, 4]
        for _ in range(2000):
            i, j = sched.next_encounter(states, rng)
            assert i != j

    def test_heavier_states_sampled_more(self):
        sched = WeightedPairScheduler(2 + 2, weight=lambda s: 10.0 if s else 1.0)
        rng = random.Random(2)
        states = [1, 1, 0, 0]
        initiators = Counter(
            sched.next_encounter(states, rng)[0] for _ in range(20_000))
        heavy = initiators[0] + initiators[1]
        light = initiators[2] + initiators[3]
        assert heavy > 5 * light

    def test_nonpositive_weight_rejected(self):
        sched = WeightedPairScheduler(3, weight=lambda s: 0.0)
        with pytest.raises(ValueError):
            sched.next_encounter([0, 0, 0], random.Random(0))

    def test_small_population_rejected(self):
        with pytest.raises(ValueError):
            WeightedPairScheduler(1, weight=lambda s: 1.0)


class TestConjectureSupport:
    """Weighted sampling computes the same verdicts (paper's conjecture)."""

    @pytest.mark.parametrize("ones,expected", [(5, 1), (4, 0)])
    def test_count_to_five_state_dependent_weights(self, ones, expected, seed):
        protocol = count_to_five()
        # Token-heavy agents are favoured 3:1 — bounded positive weights.
        scheduler = WeightedPairScheduler(
            12, weight=lambda s: 3.0 if s > 0 else 1.0)
        sim = simulate_counts(protocol, {1: ones, 0: 12 - ones},
                              scheduler=scheduler, seed=seed)
        result = run_until_quiescent(sim, patience=10_000, max_steps=2_000_000)
        assert result.output == expected

    def test_majority_weighted(self, seed):
        protocol = majority_protocol()
        scheduler = WeightedPairScheduler(
            12, weight=lambda s: 2.0 if s[0] else 1.0)  # leaders favoured
        sim = Simulation(protocol, [1] * 7 + [0] * 5,
                         scheduler=scheduler, seed=seed)
        result = run_until_quiescent(sim, patience=10_000, max_steps=2_000_000)
        assert result.output == 1

    def test_parity_weighted_vs_uniform(self, seed):
        protocol = parity_protocol()
        for ones, expected in ((3, 1), (4, 0)):
            scheduler = WeightedPairScheduler(
                10, weight=lambda s: 1.0 + s[2])
            sim = simulate_counts(protocol, {1: ones, 0: 10 - ones},
                                  scheduler=scheduler, seed=seed)
            result = run_until_quiescent(sim, patience=10_000,
                                         max_steps=2_000_000)
            assert result.output == expected
