"""Tests for the trial-measurement harness."""

import math

import pytest

from repro.sim.stats import (
    ScalingMeasurement,
    TrialSummary,
    measure_scaling,
    run_trials,
    success_rate,
)


class TestTrialSummary:
    def test_statistics(self):
        s = TrialSummary([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == 2.5
        assert s.median == 2.5
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert math.isclose(s.stdev, math.sqrt(5 / 3))
        assert math.isclose(s.stderr, s.stdev / 2)

    def test_odd_median(self):
        assert TrialSummary([3.0, 1.0, 2.0]).median == 2.0

    def test_single_value(self):
        s = TrialSummary([5.0])
        assert s.stdev == 0.0
        assert s.stderr == 0.0

    def test_empty_summary_is_all_nan(self):
        # An empty batch (e.g. every trial of a sweep point filtered out)
        # must propagate as nan through aggregation, not crash.
        s = TrialSummary([])
        assert s.count == 0
        for stat in (s.mean, s.median, s.stdev, s.stderr,
                     s.minimum, s.maximum):
            assert math.isnan(stat)
        assert math.isnan(s.quantile(0.5))


class TestRunTrials:
    def test_deterministic_by_seed(self):
        a = run_trials(lambda s: s % 100, trials=10, seed=1)
        b = run_trials(lambda s: s % 100, trials=10, seed=1)
        assert a.values == b.values

    def test_distinct_seeds_per_trial(self):
        seen = []
        run_trials(lambda s: seen.append(s) or 0.0, trials=20, seed=2)
        assert len(set(seen)) == 20

    def test_zero_trials_rejected(self):
        with pytest.raises(ValueError):
            run_trials(lambda s: 0.0, trials=0)


class TestSuccessRate:
    def test_constant_true(self):
        assert success_rate(lambda s: True, trials=10, seed=0) == 1.0

    def test_half(self):
        rate = success_rate(lambda s: s % 2 == 0, trials=1000, seed=0)
        assert 0.4 < rate < 0.6

    def test_zero_trials_rejected(self):
        with pytest.raises(ValueError):
            success_rate(lambda s: True, trials=0)


class TestMeasureScaling:
    def test_quadratic_exponent_recovered(self):
        measurement = measure_scaling(
            [8, 16, 32, 64], lambda n, s: float(n * n), trials=3, seed=0)
        assert math.isclose(measurement.exponent(), 2.0, abs_tol=1e-9)

    def test_n2_logn_with_log_division(self):
        measurement = measure_scaling(
            [16, 32, 64, 128],
            lambda n, s: n * n * math.log(n), trials=2, seed=0)
        assert math.isclose(
            measurement.exponent(divide_log=True), 2.0, abs_tol=1e-9)

    def test_table_renders(self):
        measurement = measure_scaling([4, 8], lambda n, s: float(n), trials=2,
                                      seed=0)
        table = measurement.table()
        assert "mean" in table and "4" in table

    def test_structure(self):
        measurement = measure_scaling([4, 8], lambda n, s: float(n), trials=5,
                                      seed=0)
        assert isinstance(measurement, ScalingMeasurement)
        assert measurement.ns == [4, 8]
        assert measurement.means == [4.0, 8.0]
        assert all(summary.count == 5 for summary in measurement.summaries)
