"""RNG bit-compatibility of the fault layer.

The fault-injection hooks must be *transparent*: with no plan attached
(and, on the agent engine, even with one attached) the engines consume
their RNG streams exactly as they did before the fault layer existed.
These fingerprints were recorded from the pre-fault-layer code; any drift
in states, interaction counts, convergence bookkeeping, or the RNG state
itself fails the suite.
"""

import hashlib

import pytest

from repro.protocols.counting import CountToK, Epidemic
from repro.protocols.majority import majority_protocol
from repro.sim.engine import Simulation, simulate_counts
from repro.sim.faults import CrashAt, CrashySimulation, FaultPlan, OmissionRate
from repro.sim.multiset_engine import MultisetSimulation

# The legacy CrashySimulation fingerprints below are part of the
# transparency contract; its deprecation is tested in test_faults.py.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def _digest(value) -> str:
    return hashlib.sha256(repr(value).encode()).hexdigest()[:16]


def _agent_fingerprint(protocol, counts, seed, steps):
    sim = simulate_counts(protocol, counts, seed=seed)
    sim.run(steps)
    return (_digest(tuple(sim.states)), sim.interactions,
            sim.last_output_change, _digest(sim.rng.getstate()))


def _multiset_fingerprint(protocol, counts, seed, steps):
    sim = MultisetSimulation(protocol, counts, seed=seed)
    sim.run(steps)
    return (tuple(sorted(sim.counts.items(), key=repr)), sim.interactions,
            sim.last_change, _digest(sim.rng.getstate()))


def test_agent_engine_majority_fingerprint():
    assert _agent_fingerprint(majority_protocol(), {0: 6, 1: 9},
                              12345, 4000) == \
        ("5672e4e6aeab4b8e", 4000, 42, "460482d3e52f73a4")


def test_agent_engine_count_to_k_fingerprint():
    assert _agent_fingerprint(CountToK(5), {1: 6, 0: 10}, 777, 3000) == \
        ("ae9254e7e103b8a2", 3000, 186, "96a14dd0e5574013")


def test_agent_engine_epidemic_fingerprint():
    assert _agent_fingerprint(Epidemic(), {1: 1, 0: 19}, 99, 2500) == \
        ("7164da702ea96c81", 2500, 62, "d23f7e8a2e78f02f")


def test_multiset_engine_majority_fingerprint():
    counts, interactions, last_change, rng = _multiset_fingerprint(
        majority_protocol(), {0: 60, 1: 90}, 12345, 4000)
    assert counts == (((0, 0, 0), 4), ((0, 1, -1), 7), ((0, 1, -2), 6),
                      ((0, 1, 0), 127), ((1, 1, -1), 1), ((1, 1, -2), 5))
    assert (interactions, last_change, rng) == (4000, 3981,
                                                "703659b9ae103f39")


def test_multiset_engine_count_to_k_fingerprint():
    assert _multiset_fingerprint(CountToK(5), {1: 6, 0: 44}, 777, 3000) == \
        ((((5, 50),), 3000, 1203, "4f65830cf3b3ec7f"))


def test_crashy_simulation_fingerprint():
    sim = CrashySimulation(Epidemic(), [1] + [0] * 11, seed=424242)
    sim.run(500)
    victims = sim.crash_random(3)
    sim.run(500)
    assert tuple(sim.states) == (1,) * 12
    assert sorted(sim.crashed) == [0, 2, 9]
    assert victims == [2, 0, 9]
    assert sim.interactions == 1000
    assert _digest(sim.rng.getstate()) == "688355be0b2659de"


def test_crashy_run_with_crashes_fingerprint():
    sim = CrashySimulation(CountToK(5), [1] * 4 + [0] * 8, seed=31337)
    sim.run_with_crashes([100, 200], total_steps=1500)
    assert tuple(sim.states) == (0, 0, 0, 0, 0, 0, 0, 0, 4, 0, 0, 0)
    assert sorted(sim.crashed) == [3, 7]
    assert sim.interactions == 1500
    assert _digest(sim.rng.getstate()) == "4da8230ccfed2fbf"


def test_inert_plan_is_transparent_on_agent_engine():
    plain = simulate_counts(CountToK(5), {1: 6, 0: 10}, seed=4321)
    planned = simulate_counts(CountToK(5), {1: 6, 0: 10}, seed=4321,
                              faults=FaultPlan(OmissionRate(0.0), seed=9))
    plain.run(2000)
    planned.run(2000)
    assert planned.states == plain.states
    assert planned.rng.getstate() == plain.rng.getstate()
    assert planned.last_output_change == plain.last_output_change


def test_inert_plan_is_transparent_on_multiset_engine():
    plain = MultisetSimulation(majority_protocol(), {0: 30, 1: 40},
                               seed=4321)
    planned = MultisetSimulation(majority_protocol(), {0: 30, 1: 40},
                                 seed=4321,
                                 faults=FaultPlan(OmissionRate(0.0), seed=9))
    plain.run(2000)
    planned.run(2000)
    assert planned.counts == plain.counts
    assert planned.rng.getstate() == plain.rng.getstate()


def test_crash_faults_leave_engine_stream_untouched():
    # Crashes draw from the plan's RNG; the scheduler stream of the engine
    # advances exactly as in a fault-free run of the same length.
    plain = simulate_counts(Epidemic(), {1: 2, 0: 18}, seed=55)
    faulty = simulate_counts(Epidemic(), {1: 2, 0: 18}, seed=55,
                             faults=FaultPlan(CrashAt(40, 6), seed=8))
    plain.run(1500)
    faulty.run(1500)
    assert len(faulty.crashed) == 6
    assert faulty.rng.getstate() == plain.rng.getstate()
    assert faulty.interactions == plain.interactions == 1500
