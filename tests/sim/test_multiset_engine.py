"""Tests for the counted-multiset simulation engine."""

import pytest

from repro.protocols.counting import Epidemic, count_to_five
from repro.protocols.leader import FOLLOWER, LEADER, LeaderElection
from repro.sim.multiset_engine import MultisetSimulation
from repro.sim.stats import run_trials
from repro.util.multiset import FrozenMultiset


class TestConstruction:
    def test_from_input_counts(self):
        sim = MultisetSimulation(count_to_five(), {0: 3, 1: 2})
        assert sim.multiset() == FrozenMultiset({0: 3, 1: 2})
        assert sim.n == 5

    def test_from_state_counts(self):
        sim = MultisetSimulation(count_to_five(), state_counts={4: 1, 0: 3})
        assert sim.multiset() == FrozenMultiset({4: 1, 0: 3})

    def test_both_rejected(self):
        with pytest.raises(ValueError):
            MultisetSimulation(count_to_five(), {0: 3}, state_counts={0: 3})

    def test_bad_symbol(self):
        with pytest.raises(ValueError):
            MultisetSimulation(count_to_five(), {9: 3})

    def test_too_small(self):
        with pytest.raises(ValueError):
            MultisetSimulation(count_to_five(), {1: 1})


class TestStepping:
    def test_population_size_invariant(self, seed):
        sim = MultisetSimulation(count_to_five(), {0: 5, 1: 5}, seed=seed)
        for _ in range(2000):
            sim.step()
            assert sum(sim.counts.values()) == 10

    def test_counts_stay_positive(self, seed):
        sim = MultisetSimulation(count_to_five(), {0: 5, 1: 5}, seed=seed)
        for _ in range(2000):
            sim.step()
            assert all(v > 0 for v in sim.counts.values())

    def test_epidemic_reaches_everyone(self, seed):
        sim = MultisetSimulation(Epidemic(), {0: 99, 1: 1}, seed=seed)
        sim.run_until(lambda s: s.unanimous_output() == 1,
                      max_steps=500_000, check_every=100)
        assert sim.counts == {1: 100}

    def test_deterministic_under_seed(self):
        a = MultisetSimulation(count_to_five(), {0: 5, 1: 6}, seed=3)
        b = MultisetSimulation(count_to_five(), {0: 5, 1: 6}, seed=3)
        a.run(1000)
        b.run(1000)
        assert a.counts == b.counts


class TestViews:
    def test_output_counts(self):
        sim = MultisetSimulation(count_to_five(), state_counts={5: 2, 3: 1})
        assert sim.output_counts() == {1: 2, 0: 1}

    def test_unanimous(self):
        sim = MultisetSimulation(count_to_five(), state_counts={5: 3})
        assert sim.unanimous_output() == 1


class TestAgreementWithAgentEngine:
    """The two engines sample the same chain: election times must agree in
    distribution with the exact mean (n-1)^2."""

    def test_leader_election_mean(self, seed):
        n = 10

        def trial(trial_seed):
            sim = MultisetSimulation(LeaderElection(), {1: n}, seed=trial_seed)
            sim.run_until(lambda s: s.counts.get(LEADER, 0) == 1,
                          max_steps=50_000, check_every=1)
            return sim.interactions

        summary = run_trials(trial, trials=300, seed=seed)
        want = (n - 1) ** 2
        assert abs(summary.mean - want) < 5 * summary.stderr + 1

    def test_follower_count(self, seed):
        sim = MultisetSimulation(LeaderElection(), {1: 7}, seed=seed)
        sim.run_until(lambda s: s.counts.get(LEADER, 0) == 1,
                      max_steps=50_000, check_every=1)
        assert sim.counts[FOLLOWER] == 6


class TestHaltedGuard:
    def test_step_refuses_below_two_live_agents(self, seed):
        from repro.sim.engine import SimulationHalted

        sim = MultisetSimulation(count_to_five(), {1: 3}, seed=seed)
        # Crash past the crash_random() invariant by using the internal
        # primitive directly: the step guard is the last line of defense.
        sim._crash_state(next(iter(sim.counts)))
        sim._crash_state(next(iter(sim.counts)))
        assert sim.n_alive == 1
        with pytest.raises(SimulationHalted, match="1 live agent"):
            sim.step()
