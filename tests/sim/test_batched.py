"""Fixed-seed equivalence of the batched engines with their references.

The batched engines claim more than distributional equality: for the
same seed they replay *exactly* the reference engines' RNG law, so every
trajectory statistic — the multiset, the interaction clock, the change
trackers, even the insertion order of the counts dict — must match
step for step.  These fingerprints are what licenses `exp run
--engine batched` to reuse agent-engine seeds and baselines.
"""

import random

import pytest

from repro.protocols import registry
from repro.protocols.counting import CountToK
from repro.sim.batched import (
    BatchedMultisetSimulation,
    BatchedSimulation,
    batched_simulate_counts,
)
from repro.sim.engine import Simulation, simulate_counts
from repro.sim.faults import (
    CorruptAt,
    CorruptionRate,
    CrashAt,
    CrashRate,
    FaultPlan,
    OmissionRate,
    OmitAt,
)
from repro.sim.multiset_engine import MultisetSimulation

#: (registry name, params, input counts) — n chosen so the block-decoded
#: fast path is active (bit widths of n and n-1 agree).
MULTISET_CASES = [
    ("leader-election", {}, {1: 601}),
    ("majority", {}, {1: 260, 0: 341}),
    ("count-to-k", {"k": 7}, {1: 9, 0: 292}),
]

AGENT_CASES = [
    ("leader-election", {}, {1: 300}),
    ("majority", {}, {1: 120, 0: 181}),
    ("parity", {}, {1: 77, 0: 100}),
]

CHUNKS = (1, 7, 400, 5_000, 20_000)


def _build(name, params):
    return registry.get(name).build(**params)


def _assert_multiset_state_equal(fast, ref):
    assert fast.interactions == ref.interactions
    assert fast.n == ref.n
    assert fast.n_alive == ref.n_alive
    assert fast.last_change == ref.last_change
    # Insertion order included: the batched engine mimics the reference
    # dict's scan order exactly, not just its contents.
    assert list(fast.counts.items()) == list(ref.counts.items())
    assert fast.multiset() == ref.multiset()
    assert fast.output_counts() == ref.output_counts()
    assert fast.unanimous_output() == ref.unanimous_output()
    assert fast.unanimous_surviving_output() == ref.unanimous_surviving_output()


def _assert_agent_state_equal(fast, ref):
    assert fast.interactions == ref.interactions
    assert fast.n == ref.n
    assert fast.last_output_change == ref.last_output_change
    assert list(fast.states) == list(ref.states)
    assert list(fast.outputs()) == list(ref.outputs())
    assert fast.multiset() == ref.multiset()
    assert fast.output_counts() == ref.output_counts()
    assert fast.unanimous_output() == ref.unanimous_output()


def _assert_faulted_agent_state_equal(fast, ref):
    _assert_agent_state_equal(fast, ref)
    # Crash bookkeeping, survivor views, and the plan's fault stream
    # coincide too.  (The engine's own `rng` is *not* compared: the
    # batched block decoder legitimately reads ahead of the reference
    # stream mid-trajectory; the state equality above is what proves the
    # draws were decoded identically.)
    assert sorted(fast.crashed) == sorted(ref.crashed)
    assert fast.unanimous_surviving_output() == \
        ref.unanimous_surviving_output()
    assert fast.faults.rng.getstate() == ref.faults.rng.getstate()


class TestMultisetFingerprint:
    @pytest.mark.parametrize("name,params,counts", MULTISET_CASES,
                             ids=[c[0] for c in MULTISET_CASES])
    def test_trajectory_identical(self, name, params, counts, seed,
                                  kernel_backend):
        protocol = _build(name, params)
        ref = MultisetSimulation(protocol, counts, seed=seed)
        fast = BatchedMultisetSimulation(protocol, counts, seed=seed,
                                         backend=kernel_backend)
        assert fast.backend == kernel_backend
        for chunk in CHUNKS:
            ref.run(chunk)
            fast.run(chunk)
            _assert_multiset_state_equal(fast, ref)

    def test_single_steps_identical(self, seed, kernel_backend):
        protocol = _build("majority", {})
        ref = MultisetSimulation(protocol, {1: 40, 0: 61}, seed=seed)
        fast = BatchedMultisetSimulation(protocol, {1: 40, 0: 61}, seed=seed,
                                         backend=kernel_backend)
        for _ in range(600):
            assert fast.step() == ref.step()
            assert list(fast.counts.items()) == list(ref.counts.items())

    def test_run_until_identical(self, seed, kernel_backend):
        protocol = _build("leader-election", {})
        ref = MultisetSimulation(protocol, {1: 601}, seed=seed)
        fast = BatchedMultisetSimulation(protocol, {1: 601}, seed=seed,
                                         backend=kernel_backend)
        condition = (lambda s: len(s.counts) == 2
                     and min(s.counts.values()) <= 3)
        assert (fast.run_until(condition, max_steps=500_000, check_every=64)
                == ref.run_until(condition, max_steps=500_000,
                                 check_every=64))
        _assert_multiset_state_equal(fast, ref)

    def test_fallback_when_bit_widths_differ(self, seed):
        # n = 512: randrange(512) consumes ten-bit draws, randrange(511)
        # nine-bit draws, so block decoding is off — the scalar fallback
        # must still be bit-identical.
        protocol = _build("majority", {})
        ref = MultisetSimulation(protocol, {1: 200, 0: 312}, seed=seed)
        fast = BatchedMultisetSimulation(protocol, {1: 200, 0: 312},
                                         seed=seed)
        ref.run(20_000)
        fast.run(20_000)
        _assert_multiset_state_equal(fast, ref)

    def test_minimal_population(self, seed):
        protocol = CountToK(2)
        ref = MultisetSimulation(protocol, {1: 2}, seed=seed)
        fast = BatchedMultisetSimulation(protocol, {1: 2}, seed=seed)
        ref.run(50)
        fast.run(50)
        _assert_multiset_state_equal(fast, ref)

    def test_state_counts_start(self, seed):
        protocol = CountToK(3)
        start = {protocol.initial_state(1): 5, protocol.initial_state(0): 8}
        ref = MultisetSimulation(protocol, state_counts=start, seed=seed)
        fast = BatchedMultisetSimulation(protocol, state_counts=start,
                                         seed=seed)
        ref.run(2_000)
        fast.run(2_000)
        _assert_multiset_state_equal(fast, ref)

    def test_constructor_contract_matches_reference(self):
        protocol = _build("majority", {})
        with pytest.raises(ValueError):
            BatchedMultisetSimulation(protocol)
        with pytest.raises(ValueError):
            BatchedMultisetSimulation(protocol, {1: 10},
                                      state_counts={protocol.initial_state(1): 3})
        with pytest.raises(ValueError):
            BatchedMultisetSimulation(protocol, {"bogus": 4})
        with pytest.raises(ValueError):
            BatchedMultisetSimulation(protocol, {1: -1})
        with pytest.raises(ValueError):
            BatchedMultisetSimulation(protocol, {1: 1})


class TestAgentFingerprint:
    @pytest.mark.parametrize("name,params,counts", AGENT_CASES,
                             ids=[c[0] for c in AGENT_CASES])
    def test_trajectory_identical(self, name, params, counts, seed,
                                  kernel_backend):
        protocol = _build(name, params)
        ref = simulate_counts(protocol, counts, seed=seed)
        fast = batched_simulate_counts(protocol, counts, seed=seed,
                                       backend=kernel_backend)
        assert fast.backend == kernel_backend
        for chunk in CHUNKS:
            ref.run(chunk)
            fast.run(chunk)
            _assert_agent_state_equal(fast, ref)

    def test_explicit_states_identical(self, seed):
        protocol = _build("parity", {})
        states = [protocol.initial_state(i % 2) for i in range(101)]
        ref = Simulation(protocol, states=states, seed=seed)
        fast = BatchedSimulation(protocol, states=states, seed=seed)
        ref.run(5_000)
        fast.run(5_000)
        _assert_agent_state_equal(fast, ref)

    def test_run_until_identical(self, seed):
        protocol = _build("majority", {})
        ref = simulate_counts(protocol, {1: 120, 0: 181}, seed=seed)
        fast = batched_simulate_counts(protocol, {1: 120, 0: 181}, seed=seed)
        condition = lambda s: s.interactions - s.last_output_change > 2_000
        assert (fast.run_until(condition, max_steps=300_000, check_every=256)
                == ref.run_until(condition, max_steps=300_000,
                                 check_every=256))
        _assert_agent_state_equal(fast, ref)

    def test_fallback_when_bit_widths_differ(self, seed):
        protocol = _build("majority", {})
        ref = simulate_counts(protocol, {1: 200, 0: 312}, seed=seed)
        fast = batched_simulate_counts(protocol, {1: 200, 0: 312}, seed=seed)
        ref.run(20_000)
        fast.run(20_000)
        _assert_agent_state_equal(fast, ref)

    def test_minimal_population(self, seed):
        protocol = CountToK(2)
        ref = simulate_counts(protocol, {1: 2}, seed=seed)
        fast = batched_simulate_counts(protocol, {1: 2}, seed=seed)
        ref.run(50)
        fast.run(50)
        _assert_agent_state_equal(fast, ref)

    def test_many_seeds_spot_check(self):
        # The parity fix-up in the block decoder is the subtle part;
        # hammer it across seeds on the smallest supported sizes.
        protocol = _build("leader-election", {})
        for seed in range(12):
            for n in (3, 5, 33, 100):
                ref = MultisetSimulation(protocol, {1: n}, seed=seed)
                fast = BatchedMultisetSimulation(protocol, {1: n}, seed=seed)
                ref.run(3_000)
                fast.run(3_000)
                _assert_multiset_state_equal(fast, ref)

    def test_faulted_trajectory_identical(self, seed):
        # The full sweep lives in TestFaultedAgentFingerprint; this is
        # the in-class smoke twin of test_trajectory_identical.
        protocol = _build("leader-election", {})
        plan = lambda: FaultPlan(CrashAt(500, 5), seed=11)
        ref = simulate_counts(protocol, {1: 300}, seed=seed, faults=plan())
        fast = batched_simulate_counts(protocol, {1: 300}, seed=seed,
                                       faults=plan())
        for chunk in CHUNKS:
            ref.run(chunk)
            fast.run(chunk)
            _assert_faulted_agent_state_equal(fast, ref)

    def test_faulted_run_until_identical(self, seed):
        protocol = _build("majority", {})
        ref = simulate_counts(protocol, {1: 120, 0: 181}, seed=seed,
                              faults=FaultPlan(CrashAt(900, 10), seed=3))
        fast = batched_simulate_counts(
            protocol, {1: 120, 0: 181}, seed=seed,
            faults=FaultPlan(CrashAt(900, 10), seed=3))
        condition = lambda s: s.interactions - s.last_output_change > 2_000
        assert (fast.run_until(condition, max_steps=300_000, check_every=256)
                == ref.run_until(condition, max_steps=300_000,
                                 check_every=256))
        _assert_faulted_agent_state_equal(fast, ref)

    def test_stream_gating(self, seed):
        # Block decoding requires the exact CPython Random implementation
        # and matching bit widths for randrange(n)/randrange(n-1); every
        # other configuration must take the scalar fallback.
        from repro.sim.batched import _PairDrawStream, _make_stream

        assert _PairDrawStream.supported(601)
        assert not _PairDrawStream.supported(512)  # 10-bit vs 9-bit draws
        assert not _PairDrawStream.supported(2)

        class SubclassedRandom(random.Random):
            pass

        assert _make_stream(random.Random(seed), 601) is not None
        assert _make_stream(SubclassedRandom(seed), 601) is None
        protocol = _build("majority", {})
        fast = batched_simulate_counts(protocol, {1: 200, 0: 312},
                                       seed=seed)
        assert fast._stream is None  # falls back, still bit-identical


#: Fault-plan factories (plans are stateful and bind to one simulation,
#: so each engine gets a fresh but identical instance).
FAULT_PLANS = {
    "crash-at": lambda: FaultPlan(CrashAt(500, 5), seed=77),
    "crash-rate": lambda: FaultPlan(CrashRate(0.002), seed=77),
    "corrupt-at": lambda: FaultPlan(CorruptAt(400, 3), seed=77),
    "corruption-rate": lambda: FaultPlan(CorruptionRate(0.01), seed=77),
    "omit-at": lambda: FaultPlan(OmitAt(range(100, 3000, 7)), seed=77),
    "omission-rate": lambda: FaultPlan(OmissionRate(0.2), seed=77),
    "mixed": lambda: FaultPlan([CrashAt(300, 4), OmissionRate(0.05),
                                CorruptionRate(0.005)], seed=77),
}


class TestFaultedAgentFingerprint:
    """Faulted batched runs replay the faulted reference bit for bit.

    The extension of the fingerprint contract that licenses
    ``exp run --engine batched`` (and ``repro robustness --engine
    batched``) on faulted specs: for the same ``(seed, FaultPlan)`` the
    batched engine reproduces the reference engine's faulted trajectory
    exactly — states, crash bookkeeping, convergence clocks, and both
    RNG streams — at every chunk boundary.
    """

    @pytest.mark.parametrize("plan_name", sorted(FAULT_PLANS),
                             ids=sorted(FAULT_PLANS))
    def test_every_fault_family(self, plan_name, seed, kernel_backend):
        make_plan = FAULT_PLANS[plan_name]
        protocol = _build("leader-election", {})
        ref = simulate_counts(protocol, {1: 300}, seed=seed,
                              faults=make_plan())
        fast = batched_simulate_counts(protocol, {1: 300}, seed=seed,
                                       faults=make_plan(),
                                       backend=kernel_backend)
        assert fast.backend == kernel_backend
        for chunk in CHUNKS:
            ref.run(chunk)
            fast.run(chunk)
            _assert_faulted_agent_state_equal(fast, ref)

    @pytest.mark.parametrize("name,params,counts", AGENT_CASES,
                             ids=[c[0] for c in AGENT_CASES])
    def test_mixed_plan_across_protocols(self, name, params, counts, seed):
        make_plan = FAULT_PLANS["mixed"]
        protocol = _build(name, params)
        ref = simulate_counts(protocol, counts, seed=seed,
                              faults=make_plan())
        fast = batched_simulate_counts(protocol, counts, seed=seed,
                                       faults=make_plan())
        for chunk in CHUNKS:
            ref.run(chunk)
            fast.run(chunk)
            _assert_faulted_agent_state_equal(fast, ref)

    def test_many_seeds_spot_check(self):
        protocol = _build("leader-election", {})
        for seed in range(8):
            ref = simulate_counts(
                protocol, {1: 101}, seed=seed,
                faults=FaultPlan([CrashAt(50, 3), OmissionRate(0.1)],
                                 seed=seed + 1))
            fast = batched_simulate_counts(
                protocol, {1: 101}, seed=seed,
                faults=FaultPlan([CrashAt(50, 3), OmissionRate(0.1)],
                                 seed=seed + 1))
            ref.run(4_000)
            fast.run(4_000)
            _assert_faulted_agent_state_equal(fast, ref)
