"""Tests for counter machines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machines.counter import (
    Assembler,
    CounterMachineError,
    CounterProgram,
    Halt,
    Inc,
    Jump,
    JzDec,
    divide_program,
    multiply_program,
    run_program,
)


class TestValidation:
    def test_counter_range_checked(self):
        with pytest.raises(CounterMachineError):
            CounterProgram([Inc(2), Halt()], n_counters=2)

    def test_jump_target_checked(self):
        with pytest.raises(CounterMachineError):
            CounterProgram([Jump(5)], n_counters=1)

    def test_jzdec_target_checked(self):
        with pytest.raises(CounterMachineError):
            CounterProgram([JzDec(0, 9)], n_counters=1)

    def test_empty_rejected(self):
        with pytest.raises(CounterMachineError):
            CounterProgram([], n_counters=1)

    def test_unknown_instruction_rejected(self):
        with pytest.raises(CounterMachineError):
            CounterProgram(["bogus"], n_counters=1)


class TestInterpreter:
    def test_inc_and_halt(self):
        program = CounterProgram([Inc(0), Inc(0), Halt(output=1)], 1)
        result = run_program(program, [0])
        assert result.halted
        assert result.counters == [2]
        assert result.output == 1

    def test_jzdec_branches(self):
        # if c0 == 0 halt(0) else decrement and halt(1)
        program = CounterProgram([JzDec(0, 2), Halt(output=1), Halt(output=0)], 1)
        assert run_program(program, [0]).output == 0
        result = run_program(program, [3])
        assert result.output == 1
        assert result.counters == [2]

    def test_nonhalting_budget(self):
        program = CounterProgram([Jump(0)], 1)
        result = run_program(program, [0], max_steps=100)
        assert not result.halted
        assert result.steps == 100

    def test_initial_length_checked(self):
        program = CounterProgram([Halt()], 2)
        with pytest.raises(CounterMachineError):
            run_program(program, [1])

    def test_negative_initial_rejected(self):
        program = CounterProgram([Halt()], 1)
        with pytest.raises(CounterMachineError):
            run_program(program, [-1])

    def test_capacity_enforced(self):
        program = CounterProgram([Inc(0), Inc(0), Halt()], 1)
        with pytest.raises(CounterMachineError):
            run_program(program, [0], capacity=1)

    def test_initial_capacity_enforced(self):
        program = CounterProgram([Halt()], 1)
        with pytest.raises(CounterMachineError):
            run_program(program, [9], capacity=4)


class TestAssembler:
    def test_label_resolution(self):
        asm = Assembler(1)
        asm.label("start")
        asm.jzdec(0, "end")
        asm.jump("start")
        asm.label("end")
        asm.halt(output=1)
        program = asm.assemble()
        result = run_program(program, [5])
        assert result.output == 1
        assert result.counters == [0]

    def test_undefined_label(self):
        asm = Assembler(1)
        asm.jump("nowhere")
        with pytest.raises(CounterMachineError):
            asm.assemble()

    def test_duplicate_label(self):
        asm = Assembler(1)
        asm.label("a")
        with pytest.raises(CounterMachineError):
            asm.label("a")

    def test_numeric_targets_pass_through(self):
        asm = Assembler(1)
        asm.jzdec(0, 1)
        asm.halt()
        program = asm.assemble()
        assert program[0] == JzDec(0, 1)


class TestLibraryPrograms:
    @settings(max_examples=30)
    @given(st.integers(0, 30), st.integers(1, 6))
    def test_multiply(self, value, b):
        result = run_program(multiply_program(b), [value, 0])
        assert result.halted
        assert result.counters == [0, b * value]

    @settings(max_examples=30)
    @given(st.integers(0, 50), st.integers(2, 7))
    def test_divide(self, value, b):
        program, _ = divide_program(b)
        result = run_program(program, [value, 0])
        assert result.halted
        assert result.counters[1] == value // b
        assert result.output == value % b

    def test_multiply_validates_b(self):
        with pytest.raises(CounterMachineError):
            multiply_program(0)

    def test_divide_validates_b(self):
        with pytest.raises(CounterMachineError):
            divide_program(1)
