"""Tests for urn automata (Sect. 8 direction)."""

import pytest

from repro.machines.urn import loss_probability
from repro.machines.urn_automaton import (
    UrnAutomaton,
    UrnAutomatonError,
    token_parity_automaton,
    zero_test_automaton,
)
from repro.util.rng import spawn_seeds


class TestMachineMechanics:
    def test_table_transition(self, seed):
        machine = UrnAutomaton(
            {("s", "a"): ("done", ())},
            start_state="s", halt_states=["done"])
        result = machine.run({"a": 1}, seed=seed)
        assert result.halted
        assert result.state == "done"
        assert result.urn == {}
        assert result.draws == 1

    def test_missing_transition_faults(self, seed):
        machine = UrnAutomaton(
            {("s", "a"): ("s", ("a",))},
            start_state="s", halt_states=["done"])
        with pytest.raises(UrnAutomatonError):
            machine.run({"b": 1}, seed=seed)

    def test_empty_urn_faults(self, seed):
        machine = UrnAutomaton(
            {("s", "a"): ("s", ())},  # consumes without halting
            start_state="s", halt_states=["done"])
        with pytest.raises(UrnAutomatonError):
            machine.run({"a": 2}, seed=seed)

    def test_draw_budget(self, seed):
        machine = UrnAutomaton(
            {("s", "a"): ("s", ("a",))},  # spins forever
            start_state="s", halt_states=["done"])
        result = machine.run({"a": 3}, seed=seed, max_draws=100)
        assert not result.halted
        assert result.draws == 100

    def test_replacements_added(self, seed):
        machine = UrnAutomaton(
            {("s", "a"): ("done", ("b", "b"))},
            start_state="s", halt_states=["done"])
        result = machine.run({"a": 1}, seed=seed)
        assert result.urn == {"b": 2}


class TestTokenParity:
    @pytest.mark.parametrize("ones", range(6))
    def test_parity(self, ones, seed):
        machine = token_parity_automaton()
        outcomes = set()
        for s in spawn_seeds(seed + ones, 10):
            result = machine.run({"one": ones, "end": 1}, seed=s)
            assert result.halted
            outcomes.add(result.state)
        # The machine may halt before consuming all "one" tokens (the end
        # sentinel can be drawn early), so outcomes vary; but with zero
        # ones the verdict is deterministic.
        if ones == 0:
            assert outcomes == {"halt_even"}

    def test_consumes_all_with_late_sentinel(self):
        """Force the sentinel last by running until the urn holds only it."""
        machine = token_parity_automaton()
        for ones in range(5):
            # With seed sweep, find a run where all ones were consumed.
            for s in spawn_seeds(99, 50):
                result = machine.run({"one": ones, "end": 1}, seed=s)
                if not result.urn.get("one"):
                    want = "halt_odd" if ones % 2 else "halt_even"
                    assert result.state == want
                    break


class TestZeroTestEquivalence:
    """The urn-automaton zero test reproduces the Lemma 11 loss law."""

    @pytest.mark.parametrize("n_tokens,m,k", [(10, 1, 2), (10, 3, 2), (8, 2, 1)])
    def test_loss_rate_matches_formula(self, n_tokens, m, k, seed):
        machine = zero_test_automaton(k)
        urn = {"counter": m, "timer": 1, "blank": n_tokens - 1 - m}
        trials = 3000
        losses = 0
        for s in spawn_seeds(seed, trials):
            result = machine.run(urn, seed=s)
            assert result.halted
            if result.state == "lose":
                losses += 1
        want = float(loss_probability(n_tokens, m, k))
        sigma = (want * (1 - want) / trials) ** 0.5
        assert abs(losses / trials - want) < 5 * sigma + 2e-3

    def test_urn_preserved(self, seed):
        machine = zero_test_automaton(2)
        urn = {"counter": 2, "timer": 1, "blank": 5}
        result = machine.run(urn, seed=seed)
        assert result.urn == urn  # every draw replaced

    def test_bad_k(self):
        with pytest.raises(UrnAutomatonError):
            zero_test_automaton(0)
