"""Tests for the Lemma 11 urn process: exact formulas vs sampling."""

from fractions import Fraction

import pytest

from repro.machines.urn import (
    expected_draws_no_counters,
    expected_draws_win_bound,
    loss_probability,
    loss_probability_upper_bound,
    sample_urn_game,
)
from repro.util.rng import spawn_seeds


class TestExactFormulas:
    def test_paper_formula_shape(self):
        n_tokens, m, k = 10, 3, 2
        assert loss_probability(n_tokens, m, k) == \
            Fraction(n_tokens - 1, m * n_tokens**k + (n_tokens - 1 - m))

    def test_upper_bound_holds(self):
        for n_tokens in (5, 10, 30):
            for m in range(1, n_tokens - 1):
                for k in (1, 2, 3):
                    assert loss_probability(n_tokens, m, k) <= \
                        loss_probability_upper_bound(n_tokens, m, k)

    def test_no_counters_always_lose(self):
        assert loss_probability(10, 0, 2) == 1

    def test_monotone_in_m(self):
        values = [loss_probability(10, m, 2) for m in range(1, 9)]
        assert values == sorted(values, reverse=True)

    def test_monotone_in_k(self):
        values = [loss_probability(10, 3, k) for k in range(1, 5)]
        assert values == sorted(values, reverse=True)

    def test_win_bound(self):
        assert expected_draws_win_bound(10, 2) == Fraction(5)

    def test_win_bound_requires_positive_m(self):
        with pytest.raises(ValueError):
            expected_draws_win_bound(10, 0)

    def test_no_counter_expectation_theta_nk(self):
        # E ~ N^k for large N.
        for n_tokens in (10, 20):
            for k in (1, 2, 3):
                value = expected_draws_no_counters(n_tokens, k)
                assert n_tokens**k <= value <= 2 * n_tokens**k

    def test_k1_no_counter_expectation_exact(self):
        # k = 1: geometric with success probability 1/N -> expectation N.
        assert expected_draws_no_counters(8, 1) == 8

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            loss_probability(1, 0, 1)
        with pytest.raises(ValueError):
            loss_probability(10, 10, 1)
        with pytest.raises(ValueError):
            loss_probability(10, 1, 0)


class TestSampledProcess:
    def test_deterministic_by_seed(self):
        a = sample_urn_game(10, 2, 2, seed=5)
        b = sample_urn_game(10, 2, 2, seed=5)
        assert (a.won, a.draws) == (b.won, b.draws)

    def test_no_counters_always_lose(self, seed):
        for s in spawn_seeds(seed, 20):
            outcome = sample_urn_game(6, 0, 2, seed=s)
            assert not outcome.won

    @pytest.mark.parametrize("n_tokens,m,k", [(8, 2, 1), (10, 3, 2), (6, 1, 2)])
    def test_loss_rate_matches_formula(self, n_tokens, m, k, seed):
        trials = 4000
        losses = sum(
            0 if sample_urn_game(n_tokens, m, k, seed=s).won else 1
            for s in spawn_seeds(seed, trials))
        want = float(loss_probability(n_tokens, m, k))
        rate = losses / trials
        sigma = (want * (1 - want) / trials) ** 0.5
        assert abs(rate - want) < 5 * sigma + 1e-3

    def test_expected_draws_bound_conditioned_on_win(self, seed):
        n_tokens, m, k = 12, 3, 3
        draws = []
        for s in spawn_seeds(seed, 3000):
            outcome = sample_urn_game(n_tokens, m, k, seed=s)
            if outcome.won:
                draws.append(outcome.draws)
        mean = sum(draws) / len(draws)
        assert mean <= float(expected_draws_win_bound(n_tokens, m)) * 1.05

    def test_no_counter_draws_scale(self, seed):
        n_tokens, k = 6, 2
        total = sum(sample_urn_game(n_tokens, 0, k, seed=s).draws
                    for s in spawn_seeds(seed, 1500))
        mean = total / 1500
        want = float(expected_draws_no_counters(n_tokens, k))
        assert abs(mean - want) / want < 0.15
