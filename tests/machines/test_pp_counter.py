"""Tests for the Theorem 9/10 population simulation of counter machines."""

import pytest

from repro.machines.counter import (
    Assembler,
    divide_program,
    multiply_program,
    run_program,
)
from repro.machines.pp_counter import (
    CLEANER_TAG,
    FOLLOWER_TAG,
    HALTED,
    LEADER_TAG,
    DesignatedLeaderProtocol,
    LeaderElectingCounterProtocol,
    counter_totals,
    leader_states,
)
from repro.sim.engine import Simulation, simulate_counts
from repro.util.rng import spawn_seeds


def nonzero_test_program():
    """halt(1) if counter 0 nonzero else halt(0)."""
    asm = Assembler(1)
    asm.jzdec(0, 2)
    asm.halt(output=1)
    asm.halt(output=0)
    return asm.assemble()


def run_until_halted(sim: Simulation, max_steps: int = 3_000_000) -> bool:
    return sim.run_until(
        lambda s: all(st[1] == HALTED for st in leader_states(s.states)) and
        leader_states(s.states),
        max_steps=max_steps, check_every=100)


class TestDesignatedInputs:
    def test_make_input_counts(self):
        proto = DesignatedLeaderProtocol(multiply_program(2))
        counts = proto.make_input_counts([3, 0], 10)
        assert counts["L"] == 1 and counts["T"] == 1
        assert counts[(1, 0)] == 3
        assert counts[(0, 0)] == 5
        assert sum(counts.values()) == 10

    def test_population_too_small(self):
        proto = DesignatedLeaderProtocol(multiply_program(2))
        with pytest.raises(ValueError):
            proto.make_input_counts([9, 0], 5)

    def test_bad_symbol_rejected(self):
        proto = DesignatedLeaderProtocol(multiply_program(2))
        with pytest.raises(ValueError):
            proto.initial_state((9, 9))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DesignatedLeaderProtocol(multiply_program(2), capacity=0)
        with pytest.raises(ValueError):
            DesignatedLeaderProtocol(multiply_program(2), zero_test_k=0)


class TestInvariants:
    def test_counter_mass_conserved_during_run(self, seed):
        """Between instruction effects, total shares only change by +-1 per
        Inc/Dec; mass never leaks to nowhere (sum over agents + nothing)."""
        proto = DesignatedLeaderProtocol(multiply_program(3), zero_test_k=3)
        counts = proto.make_input_counts([4, 0], 20)
        sim = simulate_counts(proto, counts, seed=seed)
        previous = counter_totals(sim.states)
        for _ in range(5000):
            sim.step()
            totals = counter_totals(sim.states)
            assert abs(totals[0] - previous[0]) <= 1
            assert abs(totals[1] - previous[1]) <= 1
            previous = totals

    def test_exactly_one_leader_forever(self, seed):
        proto = DesignatedLeaderProtocol(multiply_program(2), zero_test_k=2)
        counts = proto.make_input_counts([2, 0], 12)
        sim = simulate_counts(proto, counts, seed=seed)
        for _ in range(3000):
            sim.step()
            assert len(leader_states(sim.states)) == 1


class TestMultiplication:
    @pytest.mark.parametrize("value,b", [(0, 3), (1, 2), (5, 3), (7, 2)])
    def test_result_matches_direct_interpreter(self, value, b, seed):
        program = multiply_program(b)
        direct = run_program(program, [value, 0])
        proto = DesignatedLeaderProtocol(program, zero_test_k=3)
        n = max(25, b * value + 5)
        counts = proto.make_input_counts([value, 0], n)
        sim = simulate_counts(proto, counts, seed=seed)
        assert run_until_halted(sim)
        assert counter_totals(sim.states) == direct.counters


class TestDivision:
    @pytest.mark.parametrize("value,b", [(0, 2), (7, 2), (11, 3)])
    def test_quotient_and_remainder(self, value, b, seed):
        program, _ = divide_program(b)
        direct = run_program(program, [value, 0])
        proto = DesignatedLeaderProtocol(program, zero_test_k=3)
        counts = proto.make_input_counts([value, 0], max(25, value + 5))
        sim = simulate_counts(proto, counts, seed=seed)
        assert run_until_halted(sim)
        assert counter_totals(sim.states) == direct.counters
        leader = leader_states(sim.states)[0]
        assert leader[6] == direct.output  # remainder in the control state


class TestVerdictSpreading:
    def test_all_agents_learn_output(self, seed):
        proto = DesignatedLeaderProtocol(nonzero_test_program(), zero_test_k=3)
        counts = proto.make_input_counts([3], 15)
        sim = simulate_counts(proto, counts, seed=seed)
        assert run_until_halted(sim)
        sim.run_until(lambda s: s.unanimous_output() == 1,
                      max_steps=1_000_000, check_every=100)
        assert sim.unanimous_output() == 1


class TestZeroTestErrors:
    def test_error_rate_decreases_with_k(self, seed):
        """Wrong 'zero' verdicts become rarer as k grows (Theorem 9)."""
        value, n, trials = 1, 12, 150

        def error_rate(k: int) -> float:
            program = nonzero_test_program()
            proto = DesignatedLeaderProtocol(program, zero_test_k=k)
            counts = proto.make_input_counts([value], n)
            wrong = 0
            for s in spawn_seeds(seed + k, trials):
                sim = simulate_counts(proto, counts, seed=s)
                assert run_until_halted(sim, max_steps=500_000)
                leader = leader_states(sim.states)[0]
                if leader[6] != 1:
                    wrong += 1
            return wrong / trials

        rate_k1 = error_rate(1)
        rate_k3 = error_rate(3)
        assert rate_k3 <= rate_k1
        assert rate_k3 < 0.05

    def test_zero_counter_reports_zero(self, seed):
        proto = DesignatedLeaderProtocol(nonzero_test_program(), zero_test_k=2)
        counts = proto.make_input_counts([0], 10)
        sim = simulate_counts(proto, counts, seed=seed)
        assert run_until_halted(sim)
        assert leader_states(sim.states)[0][6] == 0


class TestLeaderElectionVariant:
    def test_converges_to_single_halted_leader(self, seed):
        proto = LeaderElectingCounterProtocol(nonzero_test_program(),
                                              zero_test_k=3)
        sim = simulate_counts(proto, {(1,): 3, (0,): 9}, seed=seed)
        done = sim.run_until(
            lambda s: (len(leader_states(s.states)) == 1 and
                       leader_states(s.states)[0][1] == HALTED),
            max_steps=3_000_000, check_every=200)
        assert done
        assert leader_states(sim.states)[0][6] == 1

    def test_exactly_one_timer_left(self, seed):
        proto = LeaderElectingCounterProtocol(nonzero_test_program(),
                                              zero_test_k=3)
        for s in spawn_seeds(seed, 10):
            sim = simulate_counts(proto, {(1,): 2, (0,): 8}, seed=s)
            sim.run_until(
                lambda s_: (len(leader_states(s_.states)) == 1 and
                            leader_states(s_.states)[0][1] == HALTED),
                max_steps=3_000_000, check_every=200)
            timers = sum(1 for st in sim.states
                         if st[0] != LEADER_TAG and st[2] == 1)
            cleaners = sum(1 for st in sim.states if st[0] == CLEANER_TAG)
            assert timers == 1 + cleaners  # each cleaner retires one more

    def test_leader_count_reaches_one_and_stays(self, seed):
        proto = LeaderElectingCounterProtocol(nonzero_test_program(),
                                              zero_test_k=2)
        sim = simulate_counts(proto, {(1,): 2, (0,): 6}, seed=seed)
        sim.run_until(lambda s: len(leader_states(s.states)) == 1,
                      max_steps=1_000_000, check_every=50)
        assert len(leader_states(sim.states)) == 1
        for _ in range(5000):
            sim.step()
            assert len(leader_states(sim.states)) == 1

    def test_zero_answer(self, seed):
        proto = LeaderElectingCounterProtocol(nonzero_test_program(),
                                              zero_test_k=3)
        sim = simulate_counts(proto, {(0,): 10}, seed=seed)
        done = sim.run_until(
            lambda s: (len(leader_states(s.states)) == 1 and
                       leader_states(s.states)[0][1] == HALTED),
            max_steps=3_000_000, check_every=200)
        assert done
        assert leader_states(sim.states)[0][6] == 0

    def test_bad_symbol(self):
        proto = LeaderElectingCounterProtocol(nonzero_test_program())
        with pytest.raises(ValueError):
            proto.initial_state("L")

    def test_election_variant_runs_multiplication(self, seed):
        """Full pipeline with handoff: the winner must dump its carried
        input shares before zero-testing, then run the program."""
        program = multiply_program(2)
        direct = run_program(program, [4, 0])
        proto = LeaderElectingCounterProtocol(program, capacity=3,
                                              zero_test_k=3)
        counts = {(1, 0): 4, (0, 0): 16}
        sim = simulate_counts(proto, counts, seed=seed)
        done = sim.run_until(
            lambda s: (len(leader_states(s.states)) == 1 and
                       leader_states(s.states)[0][1] == HALTED),
            max_steps=5_000_000, check_every=200)
        assert done
        assert counter_totals(sim.states) == direct.counters
        # The winner's carried shares were fully handed off.
        assert leader_states(sim.states)[0][4] == (0, 0)

    def test_counter_mass_exact_whp_after_final_restart(self, seed):
        """Totals are exact with high probability: the winner's final
        re-initialization restores every agent's input shares unless the
        k-consecutive-timer cutoff fires early (probability O(n^-k)).
        At k=4 all twenty seeded runs must be exact."""
        program = nonzero_test_program()
        proto = LeaderElectingCounterProtocol(program, capacity=2,
                                              zero_test_k=4)
        counts = {(1,): 5, (0,): 7}
        exact = 0
        trials = 20
        for s in spawn_seeds(seed, trials):
            sim = simulate_counts(proto, counts, seed=s)
            done = sim.run_until(
                lambda s_: (len(leader_states(s_.states)) == 1 and
                            leader_states(s_.states)[0][1] == HALTED),
                max_steps=20_000_000, check_every=200)
            assert done
            # The program consumed exactly one token (the JzDec decrement).
            if counter_totals(sim.states)[0] == 4:
                exact += 1
        assert exact >= trials - 1


class TestCounterTotalsHelper:
    def test_on_mapping(self):
        proto = DesignatedLeaderProtocol(multiply_program(2))
        counts = proto.make_input_counts([3, 0], 8)
        states = {proto.initial_state(sym): c for sym, c in counts.items()}
        assert counter_totals(states) == [3, 0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            counter_totals([])


class TestHighLevelApi:
    def test_simulate_counter_machine(self, seed):
        from repro.machines.pp_counter import simulate_counter_machine

        program = multiply_program(3)
        verdict, totals, interactions = simulate_counter_machine(
            program, [4, 0], 25, seed=seed)
        assert totals == [0, 12]
        assert interactions > 0
        assert verdict == 0  # multiply halts with output 0

    def test_budget_exhaustion_raises(self, seed):
        from repro.machines.pp_counter import simulate_counter_machine

        program = multiply_program(3)
        with pytest.raises(RuntimeError):
            simulate_counter_machine(program, [4, 0], 25, seed=seed,
                                     max_interactions=10)
