"""Tests for the Turing machine substrate."""

import pytest

from repro.machines.turing import (
    BLANK,
    TuringMachine,
    TuringMachineError,
    unary_halver_machine,
    unary_parity_machine,
)


class TestConstruction:
    def test_invalid_move_rejected(self):
        with pytest.raises(TuringMachineError):
            TuringMachine({("q", "1"): ("q", "1", 7)}, start_state="q")

    def test_states_and_alphabet(self):
        tm = unary_parity_machine()
        assert tm.states() == {"even", "odd"}
        assert tm.tape_alphabet() == {"1", BLANK}


class TestExecution:
    def test_halts_when_no_transition(self):
        tm = unary_parity_machine()
        result = tm.run(["1", "1", "1"])
        assert result.halted
        assert result.state == "odd"
        assert result.steps == 3

    def test_budget(self):
        loop = TuringMachine({("q", BLANK): ("q", BLANK, 1)}, start_state="q")
        result = loop.run([], max_steps=50)
        assert not result.halted
        assert result.steps == 50

    def test_accepts(self):
        tm = unary_parity_machine()
        assert tm.accepts(["1"] * 5)
        assert not tm.accepts(["1"] * 4)
        assert not tm.accepts([])

    def test_accepts_raises_on_nonhalting(self):
        loop = TuringMachine({("q", BLANK): ("q", BLANK, 1)}, start_state="q")
        with pytest.raises(TuringMachineError):
            loop.accepts([], max_steps=10)

    def test_tape_writes(self):
        tm = unary_halver_machine()
        result = tm.run(["1"] * 5)
        assert result.tape_string() == "babab"

    def test_blank_writes_erase(self):
        eraser = TuringMachine(
            {("q", "1"): ("q", BLANK, 1)}, start_state="q")
        result = eraser.run(["1", "1"])
        assert result.tape == {}

    def test_left_moves(self):
        # Walk right to the end, then walk back rewriting 1 -> x.
        tm = TuringMachine({
            ("r", "1"): ("r", "1", 1),
            ("r", BLANK): ("l", BLANK, -1),
            ("l", "1"): ("l", "x", -1),
        }, start_state="r")
        result = tm.run(["1", "1", "1"])
        assert result.halted
        assert result.tape_string() == "xxx"
        assert result.head == -1


class TestResultHelpers:
    def test_count_symbol(self):
        tm = unary_halver_machine()
        result = tm.run(["1"] * 9)
        assert result.count_symbol("a") == 4
        assert result.count_symbol("b") == 5

    def test_empty_tape_string(self):
        tm = unary_parity_machine()
        result = tm.run([])
        assert result.tape_string() == ""


class TestReferenceMachines:
    @pytest.mark.parametrize("m", range(10))
    def test_parity(self, m):
        assert unary_parity_machine().accepts(["1"] * m) == (m % 2 == 1)

    @pytest.mark.parametrize("m", range(12))
    def test_halver(self, m):
        result = unary_halver_machine().run(["1"] * m)
        assert result.count_symbol("a") == m // 2
