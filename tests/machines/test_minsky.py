"""Tests for Minsky's TM -> counter machine reduction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machines.minsky import LEFT, RIGHT, tm_to_counter_program
from repro.machines.turing import (
    BLANK,
    TuringMachine,
    unary_halver_machine,
    unary_parity_machine,
)


class TestEncoding:
    def test_blank_is_zero(self):
        comp = tm_to_counter_program(unary_parity_machine())
        assert comp.symbol_code[BLANK] == 0
        assert comp.base == 2  # one non-blank symbol

    def test_encode_decode_roundtrip(self):
        comp = tm_to_counter_program(unary_halver_machine())
        tape = ["1", "a", "b", "1"]
        value = comp.encode_tape(tape)
        assert comp.decode_stack(value) == tape

    def test_trailing_blanks_normalize(self):
        comp = tm_to_counter_program(unary_parity_machine())
        assert comp.encode_tape(["1", BLANK, BLANK]) == comp.encode_tape(["1"])

    def test_empty_tape_is_zero(self):
        comp = tm_to_counter_program(unary_parity_machine())
        assert comp.encode_tape([]) == 0
        assert comp.decode_stack(0) == []

    def test_unknown_symbol_rejected(self):
        comp = tm_to_counter_program(unary_parity_machine())
        with pytest.raises(ValueError):
            comp.encode_tape(["z"])

    def test_initial_counters(self):
        comp = tm_to_counter_program(unary_parity_machine())
        counters = comp.initial_counters(["1", "1"])
        assert counters[LEFT] == 0
        assert counters[RIGHT] == comp.encode_tape(["1", "1"])


class TestParityEquivalence:
    @settings(max_examples=20)
    @given(st.integers(0, 12))
    def test_accepts_match(self, m):
        tm = unary_parity_machine()
        comp = tm_to_counter_program(tm)
        result = comp.run(["1"] * m)
        assert result.halted
        assert bool(result.output) == tm.accepts(["1"] * m)


class TestHalverEquivalence:
    @settings(max_examples=15)
    @given(st.integers(0, 10))
    def test_tapes_match(self, m):
        tm = unary_halver_machine()
        comp = tm_to_counter_program(tm)
        result = comp.run(["1"] * m)
        assert result.halted
        tm_result = tm.run(["1"] * m)
        # Compare tape contents (the reduction reconstructs the final tape).
        assert "".join(comp.tape_of(result)) == tm_result.tape_string()


class TestLeftMovingMachine:
    """A machine that moves left exercises the carry-from-left-stack path."""

    def make(self) -> TuringMachine:
        # Scan right over 1s, then walk back marking them x.
        return TuringMachine({
            ("r", "1"): ("r", "1", 1),
            ("r", BLANK): ("l", BLANK, -1),
            ("l", "1"): ("l", "x", -1),
        }, start_state="r")

    @settings(max_examples=10)
    @given(st.integers(0, 6))
    def test_equivalence(self, m):
        tm = self.make()
        comp = tm_to_counter_program(tm)
        result = comp.run(["1"] * m)
        assert result.halted
        assert "".join(comp.tape_of(result)) == tm.run(["1"] * m).tape_string()


class TestStationaryWrites:
    def test_move_zero(self):
        # Rewrite the first cell in place, then halt.
        tm = TuringMachine({("q", "1"): ("done", "x", 0)}, start_state="q",
                           accept_states=["done"])
        comp = tm_to_counter_program(tm)
        result = comp.run(["1", "1"])
        assert result.halted
        assert result.output == 1
        assert comp.tape_of(result) == ["x", "1"]


class TestCounterBounds:
    def test_stack_values_polynomial_for_unary_parity(self):
        """For the parity machine the stacks stay <= 2^(input length) —
        the Theorem 10 capacity accounting (logspace machines on unary
        inputs keep Gödel numbers polynomial)."""
        comp = tm_to_counter_program(unary_parity_machine())
        m = 8
        result = comp.run(["1"] * m)
        assert max(result.counters) <= comp.base ** (m + 1)
