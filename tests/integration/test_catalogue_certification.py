"""Catalogue-wide exact certification.

Every predicate protocol in the registry is model-checked exhaustively on
all inputs of a small population — the library-level guarantee that the
shipped catalogue actually stably computes what it advertises.
"""

import pytest

from repro.analysis.stability import all_inputs_of_size, verify_stable_computation
from repro.protocols import registry

PREDICATE_ENTRIES = [
    ("count-to-k", {"k": 3}, 5),
    ("redundant-count-to-k", {"k": 3, "cap": 2}, 5),
    ("epidemic", {}, 5),
    ("majority", {}, 5),
    ("strict-majority", {}, 5),
    ("parity", {}, 5),
    ("one-way-count-to-k", {"k": 2}, 5),
    # flock-of-birds needs 20+ agents to be interesting but is the same
    # ThresholdProtocol construction as majority; check a tiny slice.
    ("flock-of-birds", {}, 4),
]


@pytest.mark.parametrize("name,params,size", PREDICATE_ENTRIES,
                         ids=[e[0] for e in PREDICATE_ENTRIES])
def test_registry_predicate_certified(name, params, size):
    entry = registry.get(name)
    protocol = entry.build(**params)
    alphabet = sorted(protocol.input_alphabet, key=repr)
    results = verify_stable_computation(
        protocol,
        lambda counts: entry.evaluate_truth(counts, **params),
        all_inputs_of_size(alphabet, size))
    failures = [r for r in results if not r]
    assert not failures, [f.reason for f in failures]


def test_every_predicate_entry_is_covered():
    """If a new predicate entry lands in the registry, this test forces a
    certification row above."""
    covered = {name for name, _, _ in PREDICATE_ENTRIES}
    predicate_entries = {e.name for e in registry.entries()
                         if e.truth is not None}
    assert predicate_entries <= covered, \
        f"uncertified registry predicates: {predicate_entries - covered}"
