"""Cross-module integration: each headline theorem exercised end to end."""

import pytest

from repro.analysis.markov import exact_output_distribution
from repro.analysis.stability import all_inputs_of_size, verify_stable_computation
from repro.core.population import line_population, random_connected_population
from repro.machines.minsky import tm_to_counter_program
from repro.machines.pp_counter import (
    HALTED,
    DesignatedLeaderProtocol,
    leader_states,
)
from repro.machines.turing import unary_parity_machine
from repro.presburger.compiler import compile_predicate
from repro.protocols.graph_simulation import GraphSimulationProtocol
from repro.protocols.output_conversion import (
    AllAgentsFromZeroNonZero,
    ZeroNonZeroWitness,
)
from repro.sim.convergence import run_until_quiescent
from repro.sim.engine import Simulation, simulate_counts
from repro.util.rng import spawn_seeds


class TestTheorem5FullPipeline:
    """Text -> parse -> QE -> protocol -> exhaustive model check, with
    formulas mixing quantifiers, congruences, and Boolean structure."""

    @pytest.mark.parametrize("text", [
        "E k. x = 2*k & k >= 0",                 # even
        "x = y | x = 2*y",                       # disjunction of equalities
        "!(x < y) & x + y = 1 mod 2",            # negation + congruence
        "A z. z < 0 | x + z >= z",               # vacuous-ish universal
    ])
    def test_model_checked(self, text):
        protocol = compile_predicate(text, extra_symbols=["pad"]) \
            if "y" not in text else compile_predicate(text)
        alphabet = sorted(protocol.input_alphabet)
        results = verify_stable_computation(
            protocol,
            lambda counts: protocol.ground_truth(counts),
            all_inputs_of_size(alphabet, 4))
        assert all(results)


class TestTheorem5PlusTheorem7:
    """A compiled Presburger predicate running on a line graph through the
    baton simulator: the compiler and the graph simulator compose."""

    def test_parity_on_a_line(self, seed):
        inner = compile_predicate("x = 1 mod 2", extra_symbols=["pad"])
        protocol = GraphSimulationProtocol(inner)
        population = line_population(6)
        inputs = ["x", "x", "x", "pad", "pad", "pad"]
        sim = Simulation(protocol, inputs, population=population, seed=seed)
        result = run_until_quiescent(sim, patience=60_000, max_steps=6_000_000)
        assert result.output == 1

    def test_on_random_graph(self, seed):
        inner = compile_predicate("x >= 2", extra_symbols=["pad"])
        protocol = GraphSimulationProtocol(inner)
        population = random_connected_population(7, 0.2, seed=9)
        inputs = ["x", "pad", "x", "pad", "pad", "pad", "pad"]
        sim = Simulation(protocol, inputs, population=population, seed=seed)
        result = run_until_quiescent(sim, patience=60_000, max_steps=6_000_000)
        assert result.output == 1


class TestTheorem2PlusCompiler:
    """The Theorem 2 wrapper composes with arbitrary inner protocols."""

    def test_wrapped_witness_matches_compiled_threshold(self, seed):
        wrapped = AllAgentsFromZeroNonZero(ZeroNonZeroWitness(2))
        compiled = compile_predicate("x >= 2", extra_symbols=["pad"])
        for ones in (0, 1, 2, 4):
            sim_w = simulate_counts(wrapped, {1: ones, 0: 6 - ones}, seed=seed)
            res_w = run_until_quiescent(sim_w, patience=10_000,
                                        max_steps=1_000_000)
            sim_c = simulate_counts(compiled, {"x": ones, "pad": 6 - ones},
                                    seed=seed)
            res_c = run_until_quiescent(sim_c, patience=10_000,
                                        max_steps=1_000_000)
            assert res_w.output == res_c.output == (1 if ones >= 2 else 0)


class TestTheorem10FullStack:
    """Turing machine -> Minsky counters -> population protocol.

    The complete Theorem 10 pipeline on unary parity, run at small n.
    """

    @pytest.mark.parametrize("m,expected", [(1, 1), (2, 0), (3, 1)])
    def test_unary_parity_on_population(self, m, expected, seed):
        tm = unary_parity_machine()
        compilation = tm_to_counter_program(tm)
        protocol = DesignatedLeaderProtocol(
            compilation.program, capacity=6, zero_test_k=3)
        initial = compilation.initial_counters(["1"] * m)
        # Distribute the Gödel-number counters as unit shares.
        n = max(20, sum(initial) + 6)
        counts = protocol.make_input_counts(initial, n)
        sim = simulate_counts(protocol, counts, seed=seed)
        done = sim.run_until(
            lambda s: (leader_states(s.states)
                       and leader_states(s.states)[0][1] == HALTED),
            max_steps=6_000_000, check_every=200)
        assert done
        assert leader_states(sim.states)[0][6] == expected

    def test_error_rate_small_over_seeds(self, seed):
        tm = unary_parity_machine()
        compilation = tm_to_counter_program(tm)
        protocol = DesignatedLeaderProtocol(
            compilation.program, capacity=6, zero_test_k=3)
        initial = compilation.initial_counters(["1", "1", "1"])
        counts = protocol.make_input_counts(initial, 24)
        wrong = 0
        trials = 8
        for s in spawn_seeds(seed, trials):
            sim = simulate_counts(protocol, counts, seed=s)
            sim.run_until(
                lambda sm: (leader_states(sm.states)
                            and leader_states(sm.states)[0][1] == HALTED),
                max_steps=6_000_000, check_every=200)
            if leader_states(sim.states)[0][6] != 1:
                wrong += 1
        assert wrong <= 1  # error probability O(n^-k log n) is tiny here


class TestTheorem11CrossCheck:
    """Exact Markov verdict == simulated verdict for compiled predicates."""

    def test_compiled_majority_chain(self, seed):
        protocol = compile_predicate("y < x")  # more x's than y's
        counts = {"x": 3, "y": 1}
        dist = exact_output_distribution(protocol, counts)
        assert dist.output_probability.get(1, 0) == pytest.approx(1.0)
        assert dist.divergence_probability == pytest.approx(0.0, abs=1e-12)

        sim = simulate_counts(protocol, counts, seed=seed)
        result = run_until_quiescent(sim, patience=8_000, max_steps=800_000)
        assert result.output == 1
