"""Cross-engine consistency: every engine tells the same story.

The agent-array, counted-multiset, and no-op-skipping engines (and, for
small inputs, the exact chain) must agree on verdicts and, in
distribution, on convergence times.
"""

import pytest

from repro.analysis.markov import MarkovAnalysis
from repro.protocols.counting import CountToK
from repro.protocols.majority import majority_protocol
from repro.protocols.remainder import parity_protocol
from repro.sim.engine import simulate_counts
from repro.sim.multiset_engine import MultisetSimulation
from repro.sim.skipping import SkippingSimulation
from repro.sim.stats import run_trials


CASES = [
    (parity_protocol, {1: 5, 0: 7}, 1),
    (parity_protocol, {1: 4, 0: 6}, 0),
    # Kept small: the Lemma 5 threshold chain grows quickly with n.
    (majority_protocol, {1: 5, 0: 3}, 1),
    (lambda: CountToK(3), {1: 3, 0: 5}, 1),
    (lambda: CountToK(3), {1: 2, 0: 6}, 0),
]


@pytest.mark.parametrize("factory,counts,expected", CASES)
class TestVerdictAgreement:
    def test_agent_engine(self, factory, counts, expected, seed):
        sim = simulate_counts(factory(), counts, seed=seed)
        done = sim.run_until(
            lambda s: s.unanimous_output() == expected,
            max_steps=2_000_000, check_every=20)
        assert done

    def test_multiset_engine(self, factory, counts, expected, seed):
        sim = MultisetSimulation(factory(), counts, seed=seed)
        done = sim.run_until(
            lambda s: s.unanimous_output() == expected,
            max_steps=2_000_000, check_every=20)
        assert done

    def test_skipping_engine(self, factory, counts, expected, seed):
        sim = SkippingSimulation(factory(), counts, seed=seed)
        done = sim.run_until(
            lambda s: s.unanimous_output() == expected,
            max_steps=200_000, check_every=1)
        assert done

    def test_exact_chain(self, factory, counts, expected, seed):
        dist = MarkovAnalysis(factory(), counts).convergence()
        assert dist.output_probability.get(expected, 0.0) == \
            pytest.approx(1.0)


class TestTimeDistributionAgreement:
    """Hitting times of the stable set: three engines, one law."""

    def test_parity_mean_times_agree(self, seed):
        protocol_factory = parity_protocol
        counts = {1: 3, 0: 3}
        analysis = MarkovAnalysis(protocol_factory(), counts)
        stable = set(analysis.output_stable_configurations())
        exact = analysis.expected_convergence_interactions()

        def agent_trial(s):
            sim = simulate_counts(protocol_factory(), counts, seed=s)
            sim.run_until(lambda x: x.multiset() in stable,
                          max_steps=100_000, check_every=1)
            return sim.interactions

        def multiset_trial(s):
            sim = MultisetSimulation(protocol_factory(), counts, seed=s)
            sim.run_until(lambda x: x.multiset() in stable,
                          max_steps=100_000, check_every=1)
            return sim.interactions

        def skipping_trial(s):
            sim = SkippingSimulation(protocol_factory(), counts, seed=s)
            sim.run_until(lambda x: x.multiset() in stable,
                          max_steps=100_000, check_every=1)
            return sim.interactions

        trials = 300
        for trial in (agent_trial, multiset_trial, skipping_trial):
            summary = run_trials(trial, trials=trials, seed=seed)
            assert abs(summary.mean - exact) < 5 * summary.stderr + 1, \
                f"{trial.__name__}: {summary.mean} vs exact {exact}"
