"""End-to-end reproduction of every worked example in the paper's text."""

import pytest

from repro.core.conventions import (
    AllAgentsPredicateOutput,
    IntegerOutput,
    SymbolCountInput,
)
from repro.presburger.compiler import compile_predicate
from repro.presburger.parser import parse
from repro.presburger.qe import decide
from repro.protocols.counting import count_to_five
from repro.protocols.majority import flock_of_birds_protocol
from repro.protocols.quotient import QuotientRemainderProtocol
from repro.sim.convergence import run_until_quiescent
from repro.sim.engine import Simulation, simulate_counts


class TestSectionOneFlockOfBirds:
    """'whether at least five birds in the flock have elevated temperatures'"""

    def test_small_flock(self, seed):
        protocol = count_to_five()
        flock = [1, 0, 1, 1, 0, 1, 1, 0, 0, 0]  # 5 elevated
        sim = Simulation(protocol, flock, seed=seed)
        result = run_until_quiescent(sim, patience=8_000, max_steps=500_000)
        assert result.output == 1
        assert AllAgentsPredicateOutput().decode(sim.outputs()) is True

    def test_four_elevated_is_negative(self, seed):
        protocol = count_to_five()
        flock = [1, 0, 1, 1, 0, 1, 0, 0]
        sim = Simulation(protocol, flock, seed=seed)
        result = run_until_quiescent(sim, patience=8_000, max_steps=500_000)
        assert result.output == 0


class TestSectionFourFivePercent:
    """'whether at least 5% of the birds in the flock have elevated
    temperatures' == 20 x1 >= x0 + x1."""

    def test_equivalence_of_formulations(self):
        original = parse("20*x1 >= x0 + x1")
        for x0 in range(0, 50, 7):
            for x1 in range(0, 5):
                assert decide(original, {"x0": x0, "x1": x1}) == \
                    (20 * x1 >= x0 + x1)

    def test_protocol_on_boundary(self, seed):
        protocol = flock_of_birds_protocol()
        # 60 birds, 3 elevated: 5% exactly.
        sim = simulate_counts(protocol, {0: 57, 1: 3}, seed=seed)
        result = run_until_quiescent(sim, patience=40_000, max_steps=4_000_000)
        assert result.output == 1
        # 61 birds, 3 elevated: 4.9%.
        sim = simulate_counts(protocol, {0: 58, 1: 3}, seed=seed)
        result = run_until_quiescent(sim, patience=40_000, max_steps=4_000_000)
        assert result.output == 0


class TestSectionThreeIntegerFunction:
    """The floor(m/3) example with its (m mod 3, floor(m/3)) variant."""

    @pytest.mark.parametrize("m", [0, 1, 2, 3, 8, 13])
    def test_quotient_pair(self, m, seed):
        protocol = QuotientRemainderProtocol(3)
        sim = simulate_counts(protocol, {1: m, 0: max(2, 16 - m)}, seed=seed)
        from repro.core.semantics import is_silent
        sim.run_until(lambda s: is_silent(protocol, s.multiset()),
                      max_steps=2_000_000, check_every=100)
        remainder, quotient = IntegerOutput(2).decode(sim.outputs())
        assert (remainder, quotient) == (m % 3, m // 3)


class TestSectionFourTwoExample:
    """The xi_m congruence definition and the Corollary 3 example
    Phi(y1, y2) = (y1 - 2 y2 ≡ 0 (mod 3)) with its vector alphabet."""

    def test_xi_m_definition(self):
        xi3 = parse("E z. E q. (x + z = y) & (q + q + q = z)")
        for x in range(-6, 7):
            for y in range(-6, 7):
                assert decide(xi3, {"x": x, "y": y}) == ((x - y) % 3 == 0)

    def test_corollary_3_example(self):
        from repro.analysis.stability import (
            all_inputs_of_size,
            verify_stable_computation,
        )
        from repro.presburger.compiler import compile_integer_predicate

        vectors = {
            (0, 0): (0, 0), (1, 0): (1, 0), (-1, 0): (-1, 0),
            (0, 1): (0, 1), (0, -1): (0, -1),
        }
        protocol = compile_integer_predicate(
            "y1 = 2*y2 mod 3", vectors, ["y1", "y2"])

        def truth(counts):
            y1 = counts.get((1, 0), 0) - counts.get((-1, 0), 0)
            y2 = counts.get((0, 1), 0) - counts.get((0, -1), 0)
            return (y1 - 2 * y2) % 3 == 0

        results = verify_stable_computation(
            protocol, truth, all_inputs_of_size(list(vectors), 3))
        assert all(results)


class TestSymbolCountConvention:
    """Theorem 1 / Lemma 2: acceptance depends only on the Parikh image."""

    def test_permuted_inputs_agree(self, seed):
        protocol = compile_predicate("x = 1 mod 2", extra_symbols=["y"])
        convention = SymbolCountInput(["x", "y"])
        word_a = convention.encode([3, 4])
        word_b = list(reversed(word_a))
        for word in (word_a, word_b):
            sim = Simulation(protocol, word, seed=seed)
            result = run_until_quiescent(sim, patience=10_000,
                                         max_steps=1_000_000)
            assert result.output == 1
