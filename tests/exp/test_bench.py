"""Tests for the kernel benchmark harness and its regression gate."""

import json

import pytest

from repro.exp.bench import (
    ENGINE_PAIRS,
    FAULT_OVERHEAD_PAIRS,
    FLEET_PAIRS,
    FULL_GRID,
    SMOKE_GRID,
    compare_to_baseline,
    faulted_overhead_check,
    format_rows,
    load_bench_file,
    run_fleet_benchmarks,
    run_kernel_benchmarks,
    run_supervision_benchmark,
    speedup_summary,
    write_bench_file,
)


def _row(protocol="leader-election", n=100, engine="multiset", steps=50,
         unit="interactions", seconds=0.1, ips=500.0):
    return {"protocol": protocol, "n": n, "engine": engine, "steps": steps,
            "unit": unit, "seconds": seconds, "ips": ips}


class TestGrids:
    def test_grids_cover_every_engine_pair(self):
        # The fleet pairs come from run_fleet_benchmarks, not the grids.
        for grid in (FULL_GRID, SMOKE_GRID):
            engines = {e for w in grid for e in w["engines"]}
            for reference, fast in ENGINE_PAIRS:
                if (reference, fast) in FLEET_PAIRS:
                    continue
                assert reference in engines
                assert fast in engines

    def test_smoke_run_produces_rows(self):
        # The real smoke grid is a few seconds of work; run it once and
        # check the row shape end to end.
        rows = run_kernel_benchmarks(smoke=True, repeats=1)
        assert len(rows) == sum(len(w["engines"]) for w in SMOKE_GRID)
        for row in rows:
            assert row["ips"] > 0
            assert row["seconds"] > 0
            assert row["unit"] in ("interactions", "reactive-steps",
                                   "interactions-equiv")
            # Provenance: every row records the kernel backend it
            # actually ran on (the default here — nothing requested).
            assert row["backend"] == "numpy"
        # Every workload-local engine pair got a speedup entry (the
        # standalone fluid workload has no discrete twin at n = 1e9, so
        # it contributes a row but no ratio).
        speedups = speedup_summary(rows)
        expected = sum(
            1 for w in SMOKE_GRID for ref, fast in ENGINE_PAIRS
            if ref in w["engines"] and fast in w["engines"])
        assert len(speedups) == expected
        assert all(s["speedup"] > 0 for s in speedups)
        assert format_rows(rows).count("\n") == len(rows)

    def test_smoke_run_with_explicit_backend_records_it(self):
        # --backend python only applies to the engines that have a
        # kernel seam; scalar reference engines stay numpy rows.
        rows = run_kernel_benchmarks(smoke=True, repeats=1,
                                     backend="python")
        backends_seen = {r["engine"]: r["backend"] for r in rows}
        assert backends_seen["batched-multiset"] == "python"
        assert backends_seen["ensemble-multiset"] == "python"
        assert backends_seen["multiset"] == "numpy"
        assert "backend" in format_rows(rows).splitlines()[0]

    def test_smoke_grid_covers_the_fluid_engine(self):
        # The n = 1e9 fluid row is a committed-baseline acceptance
        # artifact; it must sit under the CI smoke gate.
        fluid = [w for w in SMOKE_GRID for e in w["engines"] if e == "fluid"]
        assert fluid and fluid[0]["n"] == 10 ** 9


class TestSupervisionBenchmark:
    def test_smoke_run_reports_overhead(self):
        result = run_supervision_benchmark(smoke=True, repeats=1)
        assert result["overhead"] >= 1.0
        assert result["per_task_s"] >= 0.0
        assert result["trial_s"] > 0.0
        assert result["plain_s"] > 0.0
        assert result["supervised_s"] > 0.0
        assert result["protocol"] == "leader-election"


class TestFleetBenchmark:
    def test_smoke_run_produces_all_four_rows(self):
        rows = run_fleet_benchmarks(smoke=True, repeats=1)
        by_engine = {r["engine"]: r for r in rows}
        assert set(by_engine) == {"sweep-cold-pool", "sweep-warm-fleet",
                                  "sweep-startup-cold",
                                  "sweep-startup-warm"}
        for row in rows:
            assert row["seconds"] > 0
            assert row["ips"] > 0
            assert row["protocol"] == "leader-election"
        assert by_engine["sweep-cold-pool"]["unit"] == "trials"
        assert by_engine["sweep-startup-cold"]["unit"] == "sweeps"
        assert by_engine["sweep-startup-cold"]["steps"] == 1
        # Both fleet pairs resolve to a speedup entry.
        fleet_speedups = [s for s in speedup_summary(rows)
                          if (s["reference"], s["fast"]) in FLEET_PAIRS]
        assert len(fleet_speedups) == 2

    def test_smoke_rows_match_committed_baseline_keys(self):
        # Unlike the kernel grid, the fleet workload shape is identical
        # in smoke and full runs, so the smoke CI gate always finds its
        # rows in the full-run baseline.  Guard that by matching the
        # smoke row keys against the committed artifact.
        import os

        path = os.path.join(os.path.dirname(__file__), "..", "..",
                            "BENCH_engines.json")
        baseline = {(r["protocol"], r["n"], r["engine"], r["steps"],
                     r["unit"])
                    for r in load_bench_file(path)}
        rows = run_fleet_benchmarks(smoke=True, repeats=1)
        for row in rows:
            key = (row["protocol"], row["n"], row["engine"], row["steps"],
                   row["unit"])
            assert key in baseline


class TestBaselineGate:
    def test_round_trip(self, tmp_path):
        rows = [_row(), _row(engine="batched-multiset", ips=2500.0)]
        path = tmp_path / "bench.json"
        write_bench_file(str(path), rows)
        assert load_bench_file(str(path)) == rows
        payload = json.loads(path.read_text())
        assert payload["schema"] == 1
        assert payload["speedups"] == [
            {"protocol": "leader-election", "n": 100, "steps": 50,
             "reference": "multiset", "fast": "batched-multiset",
             "speedup": 5.0}]

    def test_rejects_non_baseline_file(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ValueError):
            load_bench_file(str(path))

    def test_regression_detected(self):
        baseline = [_row(ips=1000.0)]
        fine = compare_to_baseline([_row(ips=400.0)], baseline,
                                   max_regression=3.0)
        assert fine == []
        bad = compare_to_baseline([_row(ips=100.0)], baseline,
                                  max_regression=3.0)
        assert len(bad) == 1
        assert bad[0]["ratio"] == 10.0
        assert bad[0]["engine"] == "multiset"

    def test_unmatched_rows_ignored(self):
        baseline = [_row(ips=1000.0)]
        new_workload = [_row(n=999, ips=1.0)]
        assert compare_to_baseline(new_workload, baseline) == []

    def test_gate_is_backend_keyed(self):
        # A slow python-backend run must not trip a numpy baseline (and
        # vice versa) — only like-for-like rows are compared.
        baseline = [_row(ips=1000.0)]
        python_rows = [dict(_row(ips=1.0), backend="python")]
        assert compare_to_baseline(python_rows, baseline) == []
        python_baseline = [dict(_row(ips=1000.0), backend="python")]
        bad = compare_to_baseline([dict(_row(ips=100.0), backend="python")],
                                  python_baseline, max_regression=3.0)
        assert len(bad) == 1
        assert bad[0]["backend"] == "python"

    def test_legacy_baseline_rows_read_as_numpy(self):
        # Baselines committed before the backend field existed gate the
        # default backend exactly as before.
        legacy_baseline = [_row(ips=1000.0)]
        numpy_rows = [dict(_row(ips=100.0), backend="numpy")]
        bad = compare_to_baseline(numpy_rows, legacy_baseline,
                                  max_regression=3.0)
        assert len(bad) == 1

    def test_speedups_never_fail_the_gate(self):
        baseline = [_row(ips=1000.0)]
        assert compare_to_baseline([_row(ips=9000.0)], baseline) == []

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            compare_to_baseline([], [], max_regression=0.0)

    def test_committed_baseline_meets_fault_overhead_gate(self):
        # The committed rows must themselves satisfy the <= 10% faulted
        # batched overhead contract (ISSUE-8): same-run row pairs, so
        # the check is hardware-independent.
        import os

        path = os.path.join(os.path.dirname(__file__), "..", "..",
                            "BENCH_engines.json")
        rows = load_bench_file(path)
        engines = {r["engine"] for r in rows}
        for plain, faulted in FAULT_OVERHEAD_PAIRS:
            assert plain in engines and faulted in engines
        assert "ensemble-multiset-faulted" in engines
        assert faulted_overhead_check(rows, max_overhead=1.10) == []

    def test_committed_baseline_meets_acceptance_targets(self):
        # BENCH_engines.json at the repo root is the committed artifact
        # the issue's acceptance criteria read: batched multiset >= 5x at
        # n = 1e5 on leader election, incremental skipping >= 3x on the
        # wide-live-set threshold workload, ensemble >= 10x on the
        # 256-trial leader-election sweep at n = 1e4.
        import os

        path = os.path.join(os.path.dirname(__file__), "..", "..",
                            "BENCH_engines.json")
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        by_pair = {(s["protocol"], s["n"], s["reference"], s["fast"]):
                   s["speedup"] for s in payload["speedups"]}
        assert by_pair[("leader-election", 100_000, "multiset",
                        "batched-multiset")] >= 5.0
        assert by_pair[("threshold-mixed", 5_000, "skipping-rebuild",
                        "skipping-incremental")] >= 3.0
        assert by_pair[("leader-election", 10_000, "multiset",
                        "ensemble-multiset")] >= 10.0

    def test_committed_baseline_meets_fleet_targets(self):
        # ISSUE-10 acceptance: warm fleet >= 3x on sweep startup
        # latency, >= 1.5x end-to-end on a many-point small-trial
        # sweep.  Same-run row pairs, so hardware cancels.
        import os

        path = os.path.join(os.path.dirname(__file__), "..", "..",
                            "BENCH_engines.json")
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        by_pair = {(s["reference"], s["fast"]): s["speedup"]
                   for s in payload["speedups"]}
        assert by_pair[("sweep-startup-cold", "sweep-startup-warm")] >= 3.0
        assert by_pair[("sweep-cold-pool", "sweep-warm-fleet")] >= 1.5


class TestFaultedOverheadGate:
    def _pair(self, plain_ips, faulted_ips):
        return [_row(engine="batched-agent", ips=plain_ips),
                _row(engine="batched-agent-faulted", ips=faulted_ips)]

    def test_overhead_within_gate_passes(self):
        assert faulted_overhead_check(self._pair(1000.0, 950.0)) == []

    def test_overhead_beyond_gate_detected(self):
        problems = faulted_overhead_check(self._pair(1000.0, 800.0))
        assert len(problems) == 1
        assert problems[0]["engine"] == "batched-agent-faulted"
        assert problems[0]["plain_engine"] == "batched-agent"
        assert problems[0]["overhead"] == 1.25

    def test_faulted_speedup_never_fails(self):
        # Noise can make the faulted row *faster*; that is never a gate
        # violation.
        assert faulted_overhead_check(self._pair(1000.0, 1100.0)) == []

    def test_missing_twin_is_skipped(self):
        lonely = [_row(engine="batched-agent-faulted", ips=1.0)]
        assert faulted_overhead_check(lonely) == []

    def test_ungated_engines_are_ignored(self):
        rows = [_row(engine="ensemble-multiset", ips=1000.0),
                _row(engine="ensemble-multiset-faulted", ips=100.0)]
        assert faulted_overhead_check(rows) == []

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            faulted_overhead_check([], max_overhead=0.9)
