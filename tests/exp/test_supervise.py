"""Supervised execution: timeouts, retries, crash recovery, quarantine.

The failure modes are injected through the normal protocol interface by
:mod:`repro.protocols.faulty` (poison input symbols mapped per
population size via an explicit input table), so every test drives the
full path: spec → runner → supervised worker process → engine.  The
headline assertions:

* successful-trial records are byte-identical to an unfailed run, even
  when workers were SIGKILLed and respawned along the way;
* a hung trial is cut at ``timeout_s`` (worker-side alarm) or shortly
  after (parent-side deadline when the alarm is blocked, standing in
  for a worker wedged in C code);
* a poison trial ends as a structured ``trial-failure`` record that
  resumes as a *failure*, not as pending work.

This file is also the CI supervision smoke job (see
``.github/workflows/ci.yml``).
"""

import json

import pytest

from repro.exp.runner import run_experiment, run_trial, sweep_points
from repro.exp.spec import (
    ExecutionPolicy,
    ExperimentSpec,
    InputGrid,
    StopRule,
)
from repro.exp.store import ResultStore
from repro.exp.supervise import (
    MAX_BACKOFF_S,
    TrialExecutionError,
    backoff_delay,
    build_trial_tasks,
)
from repro.protocols import faulty

faulty.install()

#: Input tables: each population size carries one failure mode (or none).
HEALTHY = {8: {1: 1, 0: 7}}


def poison(mode: str, n: int = 9) -> dict:
    """One poison agent at population size ``n``, rest healthy."""
    return {n: {1: 1, 0: n - 2, mode: 1}}


def make_spec(table: dict, *, policy: ExecutionPolicy, trials: int = 1,
              engine: str = "agent", seed: int = 3,
              protocol: str = "misbehaving-epidemic") -> ExperimentSpec:
    # The poison bitmask opts the misbehaving protocol's alphabet into
    # every failure mode; the default build stays benign so nothing
    # that eagerly enumerates the alphabet can trip a poison symbol.
    params = ({"poison": faulty.ALL_POISON}
              if protocol == "misbehaving-epidemic" else {})
    return ExperimentSpec(
        protocol=protocol, ns=tuple(sorted(table)),
        trials=trials, params=params, inputs=InputGrid.explicit(table),
        stop=StopRule(patience=200, max_steps=5_000),
        engine=engine, execution=policy, seed=seed)


QUARANTINE = ExecutionPolicy(max_attempts=2, backoff=0.0,
                             on_error="quarantine")


@pytest.fixture
def marker_dir(tmp_path, monkeypatch):
    """Marker directory for the stateful poison modes (flaky, die)."""
    path = tmp_path / "markers"
    path.mkdir()
    monkeypatch.setenv(faulty.MARKER_DIR_ENV, str(path))
    return path


def dumps(records):
    return json.dumps(records, sort_keys=True)


class TestBackoff:
    def test_deterministic(self):
        policy = ExecutionPolicy(backoff=0.5)
        assert backoff_delay(policy, "task-a", 1) == \
            backoff_delay(policy, "task-a", 1)

    def test_jittered_exponential_growth(self):
        policy = ExecutionPolicy(backoff=0.5)
        for attempt in (1, 2, 3):
            delay = backoff_delay(policy, "task-a", attempt)
            base = 0.5 * 2 ** (attempt - 1)
            assert 0.5 * base <= delay < 1.5 * base

    def test_distinct_tasks_get_distinct_jitter(self):
        policy = ExecutionPolicy(backoff=0.5)
        delays = {backoff_delay(policy, f"task-{i}", 1) for i in range(8)}
        assert len(delays) > 1

    def test_capped(self):
        policy = ExecutionPolicy(backoff=10.0)
        assert backoff_delay(policy, "task-a", 12) == MAX_BACKOFF_S

    def test_zero_backoff_is_instant(self):
        assert backoff_delay(ExecutionPolicy(backoff=0.0), "t", 3) == 0.0


class TestSupervisedDeterminism:
    """Supervision must never change *what* is computed."""

    def test_records_match_in_process_run_trial(self):
        policy = ExecutionPolicy(timeout_s=60.0, max_attempts=2)
        spec = make_spec({**HEALTHY, 10: {1: 2, 0: 8}},
                         policy=policy, trials=2)
        result = run_experiment(spec, workers=2)
        expected = [run_trial(spec, point, trial,
                              spec_hash=result.spec_hash)
                    for point in sweep_points(spec)
                    for trial in range(spec.trials)]
        assert dumps(result.records) == dumps(
            sorted(expected, key=lambda r: (r["n"], r["trial"])))

    def test_worker_count_invariant(self):
        policy = ExecutionPolicy(timeout_s=60.0)
        spec = make_spec({**HEALTHY, 10: {1: 2, 0: 8}},
                         policy=policy, trials=3)
        solo = run_experiment(spec, workers=1)
        fleet = run_experiment(spec, workers=3)
        assert dumps(solo.records) == dumps(fleet.records)
        assert solo.supervision["tasks"] == 6

    def test_supervision_counters_clean_run(self):
        spec = make_spec(HEALTHY, policy=ExecutionPolicy(timeout_s=60.0),
                         trials=2)
        result = run_experiment(spec, workers=1)
        assert result.supervision == {
            "tasks": 2, "attempts": 2, "retries": 0, "timeouts": 0,
            "crashes": 0, "errors": 0, "quarantined": 0, "skipped": 0}


class TestPoisonTrials:
    def test_boom_quarantined_with_full_forensics(self, marker_dir):
        spec = make_spec({**HEALTHY, **poison("boom")},
                         policy=QUARANTINE, trials=1)
        result = run_experiment(spec, workers=2)
        assert [r["n"] for r in result.records] == [8]
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure["kind"] == "trial-failure"
        assert failure["n"] == 9
        assert failure["error_type"] == "RuntimeError"
        assert "boom" in failure["message"]
        assert "RuntimeError" in failure["traceback"]
        assert failure["spec_hash"] == result.spec_hash
        assert len(failure["attempts"]) == 2
        assert all("traceback" not in a for a in failure["attempts"])
        assert isinstance(failure["engine_seed"], int)
        assert result.supervision["errors"] == 2
        assert result.supervision["quarantined"] == 1

    def test_on_error_raise_aborts(self, marker_dir):
        policy = ExecutionPolicy(max_attempts=2, backoff=0.0)
        spec = make_spec(poison("boom"), policy=policy)
        with pytest.raises(TrialExecutionError, match="boom"):
            run_experiment(spec, workers=1)

    def test_on_error_skip_drops_silently(self, marker_dir):
        policy = ExecutionPolicy(max_attempts=1, on_error="skip")
        spec = make_spec({**HEALTHY, **poison("boom")}, policy=policy)
        result = run_experiment(spec, workers=1)
        assert [r["n"] for r in result.records] == [8]
        assert result.failures == []
        assert result.supervision["skipped"] == 1


class TestTransientFailures:
    def test_flaky_trial_retries_to_byte_identical_record(self, marker_dir,
                                                          monkeypatch,
                                                          tmp_path):
        policy = ExecutionPolicy(max_attempts=3, backoff=0.0,
                                 on_error="quarantine")
        spec = make_spec({**HEALTHY, **poison("flaky")}, policy=policy)
        result = run_experiment(spec, workers=1)
        assert result.failures == []
        assert [r["n"] for r in result.records] == [8, 9]
        assert result.supervision["retries"] == 1
        assert result.supervision["errors"] == 1

        # Clean comparison run: pre-fire the marker so nothing fails.
        clean_dir = tmp_path / "clean"
        clean_dir.mkdir()
        (clean_dir / "flaky.fired").touch()
        monkeypatch.setenv(faulty.MARKER_DIR_ENV, str(clean_dir))
        clean = run_experiment(spec, workers=1)
        assert clean.supervision["retries"] == 0
        assert dumps(result.records) == dumps(clean.records)

    def test_sigkilled_worker_respawns_and_records_match(self, marker_dir,
                                                         monkeypatch,
                                                         tmp_path):
        """The acceptance criterion: a sweep whose worker is SIGKILLed
        mid-trial completes with records byte-identical to an unfailed
        run."""
        policy = ExecutionPolicy(timeout_s=60.0, max_attempts=3,
                                 backoff=0.0, on_error="quarantine")
        spec = make_spec({**HEALTHY, **poison("die")},
                         policy=policy, trials=2)
        result = run_experiment(spec, workers=2)
        assert result.supervision["crashes"] == 1
        assert result.failures == []
        assert len(result.records) == 4

        clean_dir = tmp_path / "clean"
        clean_dir.mkdir()
        (clean_dir / "die.fired").touch()
        monkeypatch.setenv(faulty.MARKER_DIR_ENV, str(clean_dir))
        clean = run_experiment(spec, workers=2)
        assert clean.supervision["crashes"] == 0
        assert dumps(result.records) == dumps(clean.records)


class TestTimeouts:
    def test_hung_trial_cut_at_timeout(self, marker_dir):
        policy = ExecutionPolicy(timeout_s=0.3, max_attempts=1,
                                 on_error="quarantine")
        spec = make_spec({**HEALTHY, **poison("hang")}, policy=policy)
        result = run_experiment(spec, workers=1)
        assert [r["n"] for r in result.records] == [8]
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure["error_type"] == "TrialTimeout"
        assert failure["attempts"][0]["elapsed_s"] >= 0.25
        assert failure["attempts"][0]["elapsed_s"] < 5.0
        assert result.supervision["timeouts"] == 1

    def test_alarm_proof_hang_killed_by_parent_deadline(self, marker_dir):
        policy = ExecutionPolicy(timeout_s=0.3, max_attempts=1,
                                 on_error="quarantine")
        spec = make_spec({**HEALTHY, **poison("hang-hard")},
                         policy=policy)
        result = run_experiment(spec, workers=1)
        assert [r["n"] for r in result.records] == [8]
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure["error_type"] == "TrialTimeout"
        assert "supervisor deadline" in failure["message"]
        assert result.supervision["timeouts"] == 1


class TestQuarantineResume:
    def test_quarantined_trials_resume_as_failures(self, marker_dir,
                                                   tmp_path):
        spec = make_spec({**HEALTHY, **poison("boom")},
                         policy=QUARANTINE)
        store_path = tmp_path / "results.jsonl"
        first = run_experiment(spec, store=ResultStore(store_path),
                               workers=1)
        assert len(first.failures) == 1

        reopened = ResultStore(store_path)
        assert reopened.quarantined_ids() == {first.failures[0]["id"]}
        resumed = run_experiment(spec, store=reopened, workers=1)
        assert resumed.executed == 0
        assert resumed.supervision["tasks"] == 0
        assert dumps(resumed.failures) == dumps(first.failures)

    def test_retry_quarantined_reexecutes(self, marker_dir, tmp_path):
        spec = make_spec({**HEALTHY, **poison("boom")},
                         policy=QUARANTINE)
        store_path = tmp_path / "results.jsonl"
        run_experiment(spec, store=ResultStore(store_path), workers=1)
        retried = run_experiment(spec, store=ResultStore(store_path),
                                 workers=1, retry_quarantined=True)
        assert retried.supervision["tasks"] == 1  # just the poison trial
        assert retried.supervision["errors"] == 2

    def test_late_success_supersedes_stored_failure(self, marker_dir,
                                                    tmp_path):
        # flaky with max_attempts=1: the single attempt consumes the
        # marker and fails -> quarantined.  The retry-quarantined rerun
        # finds the marker already fired and succeeds.
        policy = ExecutionPolicy(max_attempts=1, on_error="quarantine")
        spec = make_spec({**HEALTHY, **poison("flaky")}, policy=policy)
        store_path = tmp_path / "results.jsonl"
        first = run_experiment(spec, store=ResultStore(store_path),
                               workers=1)
        assert len(first.failures) == 1
        second = run_experiment(spec, store=ResultStore(store_path),
                                workers=1, retry_quarantined=True)
        assert second.failures == []
        assert len(second.records) == 2
        reopened = ResultStore(store_path)
        assert reopened.failures() == []
        assert reopened.quarantined_ids() == set()


class TestEnsembleSupervision:
    """The ensemble engine compiles the *whole* input alphabet up front,
    so poison symbols cannot ride along in a healthy spec the way they
    do under the lazy agent engine.  Failure is injected instead via an
    input symbol outside the (plain epidemic) alphabet, which the
    ensemble engine rejects inside the worker."""

    def test_ensemble_point_batch_quarantines_every_trial(self):
        policy = ExecutionPolicy(max_attempts=1, on_error="quarantine")
        spec = make_spec({**HEALTHY, 9: {1: 1, 0: 6, "junk": 1}},
                         policy=policy, trials=3, engine="ensemble",
                         protocol="epidemic")
        result = run_experiment(spec, workers=1)
        assert [r["n"] for r in result.records] == [8, 8, 8]
        assert len(result.failures) == 3
        assert {f["trial"] for f in result.failures} == {0, 1, 2}
        assert all(f["error_type"] == "ValueError"
                   for f in result.failures)
        assert all("junk" in f["message"] for f in result.failures)

    def test_ensemble_worker_count_invariant(self):
        policy = ExecutionPolicy(timeout_s=60.0)
        spec = make_spec({**HEALTHY, 10: {1: 2, 0: 8}},
                         policy=policy, trials=4, engine="ensemble",
                         protocol="epidemic")
        solo = run_experiment(spec, workers=1)
        fleet = run_experiment(spec, workers=2)
        assert dumps(solo.records) == dumps(fleet.records)


class TestSmokeSweep:
    """The CI supervision smoke scenario in one sweep: a crashing, a
    hanging, and a flaky-then-succeeding trial beside a healthy one."""

    def test_combined_failure_sweep(self, marker_dir):
        policy = ExecutionPolicy(timeout_s=0.5, max_attempts=2,
                                 backoff=0.0, on_error="quarantine")
        table = dict(HEALTHY)
        table.update(poison("die", 9))
        table.update(poison("hang", 10))
        table.update(poison("flaky", 11))
        spec = make_spec(table, policy=policy)
        result = run_experiment(spec, workers=2)

        # Healthy, crashed-then-respawned, and flaky-then-retried trials
        # all end as normal records; only the hang is quarantined.
        assert [r["n"] for r in result.records] == [8, 9, 11]
        assert [f["n"] for f in result.failures] == [10]
        assert result.failures[0]["error_type"] == "TrialTimeout"
        assert len(result.failures[0]["attempts"]) == 2
        stats = result.supervision
        assert stats["crashes"] >= 1
        assert stats["timeouts"] >= 2
        assert stats["retries"] >= 2
        assert stats["quarantined"] == 1
