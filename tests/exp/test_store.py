"""Tests for the append-only JSONL result store."""

import json

import pytest

from repro.exp.spec import ExperimentSpec, InputGrid, StopRule
from repro.exp.store import ResultStore, StoreMismatch


def make_spec(seed=7) -> ExperimentSpec:
    return ExperimentSpec(protocol="epidemic", ns=(6,), trials=2,
                          inputs=InputGrid(kind="ones", ones=1),
                          stop=StopRule(patience=500, max_steps=20_000),
                          seed=seed)


def trial(i: int) -> dict:
    return {"kind": "trial", "id": f"{i:016x}", "n": 6, "intensity": None,
            "trial": i, "interactions": 100 + i, "converged_at": 10 + i}


def failure(i: int) -> dict:
    return {"kind": "trial-failure", "id": f"{i:016x}", "n": 6,
            "intensity": None, "trial": i, "error_type": "RuntimeError",
            "message": "boom"}


class TestBasics:
    def test_fresh_store_is_empty(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        assert len(store) == 0
        assert store.spec() is None
        assert store.completed_ids() == set()

    def test_append_and_reload(self, tmp_path):
        path = tmp_path / "r.jsonl"
        store = ResultStore(path)
        store.bind_spec(make_spec())
        store.append(trial(0))
        store.append(trial(1))

        reloaded = ResultStore(path)
        assert len(reloaded) == 2
        assert reloaded.completed_ids() == {trial(0)["id"], trial(1)["id"]}
        assert reloaded.records()[0]["interactions"] == 100
        assert reloaded.spec() == make_spec()
        assert reloaded.spec_hash() == make_spec().content_hash()

    def test_append_is_idempotent_by_id(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.bind_spec(make_spec())
        store.append(trial(0))
        store.append(trial(0))
        assert len(store) == 1
        assert len(ResultStore(store.path)) == 1

    def test_malformed_records_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        with pytest.raises(ValueError):
            store.append({"kind": "trial"})  # no id
        with pytest.raises(ValueError):
            store.append({"id": "x"})  # no kind


class TestFailureRecords:
    """Quarantine records: durable, idempotent, superseded by success."""

    def test_append_failure_and_reload(self, tmp_path):
        path = tmp_path / "r.jsonl"
        store = ResultStore(path)
        store.bind_spec(make_spec())
        store.append(trial(0))
        store.append_failure(failure(1))

        reloaded = ResultStore(path)
        assert len(reloaded) == 1  # only the trial counts as a record
        assert reloaded.failures() == [failure(1)]
        assert reloaded.quarantined_ids() == {failure(1)["id"]}
        assert reloaded.completed_ids() == {trial(0)["id"]}

    def test_append_failure_is_idempotent_by_id(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.append_failure(failure(0))
        store.append_failure(failure(0))
        assert len(store.failures()) == 1
        assert len(ResultStore(store.path).failures()) == 1

    def test_trial_record_supersedes_failure(self, tmp_path):
        # A retried quarantined trial that later succeeds: the failure
        # line stays in the file, but the effective view reports only
        # the success — exactly-once per trial id.
        path = tmp_path / "r.jsonl"
        store = ResultStore(path)
        store.append_failure(failure(0))
        assert store.quarantined_ids() == {failure(0)["id"]}
        store.append(trial(0))
        assert store.failures() == []
        assert store.quarantined_ids() == set()

        reloaded = ResultStore(path)
        assert reloaded.failures() == []
        assert reloaded.quarantined_ids() == set()
        assert reloaded.completed_ids() == {trial(0)["id"]}

    def test_malformed_failure_records_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        with pytest.raises(ValueError):
            store.append_failure(trial(0))  # wrong kind
        with pytest.raises(ValueError):
            store.append_failure({"kind": "trial-failure"})  # no id

    def test_torn_failure_tail_is_dropped(self, tmp_path):
        path = tmp_path / "r.jsonl"
        store = ResultStore(path)
        store.append_failure(failure(0))
        store.append_failure(failure(1))
        size = path.stat().st_size
        with open(path, "r+b") as handle:
            handle.truncate(size - 10)

        repaired = ResultStore(path)
        assert repaired.quarantined_ids() == {failure(0)["id"]}


class TestSpecBinding:
    def test_rebinding_same_spec_is_noop(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.bind_spec(make_spec())
        store.bind_spec(make_spec())
        assert ResultStore(store.path).spec() == make_spec()

    def test_mismatched_spec_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.bind_spec(make_spec(seed=7))
        with pytest.raises(StoreMismatch):
            store.bind_spec(make_spec(seed=8))
        with pytest.raises(StoreMismatch):
            ResultStore(store.path).bind_spec(make_spec(seed=8))


class TestTornTailRepair:
    def test_partial_last_line_is_dropped(self, tmp_path):
        path = tmp_path / "r.jsonl"
        store = ResultStore(path)
        store.bind_spec(make_spec())
        store.append(trial(0))
        store.append(trial(1))
        size = path.stat().st_size
        with open(path, "r+b") as handle:
            handle.truncate(size - 10)  # cut into the final record

        repaired = ResultStore(path)
        assert len(repaired) == 1
        assert trial(0)["id"] in repaired
        assert trial(1)["id"] not in repaired
        # The torn bytes are gone; appending produces a clean file again.
        repaired.append(trial(1))
        lines = path.read_text().splitlines()
        assert all(json.loads(line) for line in lines)
        assert len(lines) == 3  # header + two trials

    def test_missing_trailing_newline_is_dropped(self, tmp_path):
        path = tmp_path / "r.jsonl"
        store = ResultStore(path)
        store.bind_spec(make_spec())
        store.append(trial(0))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(trial(1)))  # no newline: torn write

        repaired = ResultStore(path)
        assert len(repaired) == 1
        repaired.append(trial(1))
        assert len(ResultStore(path)) == 2
