"""Tests for the experiment runner's two core invariants.

1. **Parallel-vs-serial determinism** — the same spec produces identical
   result records whether it runs on one worker or four, because every
   trial's seeds derive from ``(spec hash, point, trial)`` alone.
2. **Resume-after-interrupt** — truncating the store mid-sweep and
   re-running executes only the missing trials and reconstructs the
   exact same record set.
"""

import json
import os

import pytest

from repro.exp.report import trials_csv
from repro.exp.runner import (
    SweepPoint,
    plan_size,
    run_experiment,
    run_trial,
    sweep_points,
    trial_id,
    trial_seeds,
)
from repro.exp.spec import ExperimentSpec, FaultAxis, InputGrid, StopRule
from repro.exp.store import ResultStore


def make_spec(**overrides) -> ExperimentSpec:
    base = dict(protocol="epidemic", ns=(6, 8), trials=3,
                inputs=InputGrid(kind="ones", ones=1),
                stop=StopRule(patience=500, max_steps=20_000), seed=7)
    base.update(overrides)
    return ExperimentSpec(**base)


class TestSeedDerivation:
    def test_pure_function_of_identity(self):
        point = SweepPoint(8, 0.3)
        assert trial_seeds("abc", point, 2) == trial_seeds("abc", point, 2)

    def test_distinct_across_trials_points_and_streams(self):
        seeds = set()
        for point in (SweepPoint(8), SweepPoint(16), SweepPoint(8, 0.1)):
            for trial in range(5):
                engine, fault = trial_seeds("abc", point, trial)
                seeds.update((engine, fault))
        assert len(seeds) == 30  # no collisions anywhere

    def test_spec_hash_feeds_the_seeds(self):
        point = SweepPoint(8)
        assert trial_seeds("abc", point, 0) != trial_seeds("abd", point, 0)

    def test_trial_id_stable(self):
        assert trial_id("abc", SweepPoint(8), 1) == \
            trial_id("abc", SweepPoint(8), 1)
        assert trial_id("abc", SweepPoint(8), 1) != \
            trial_id("abc", SweepPoint(8), 2)


class TestSweepPoints:
    def test_without_fault_axis(self):
        assert sweep_points(make_spec()) == [SweepPoint(6), SweepPoint(8)]

    def test_with_fault_axis(self):
        spec = make_spec(faults=FaultAxis("omission-rate", (0.0, 0.5)))
        points = sweep_points(spec)
        assert points == [SweepPoint(6, 0.0), SweepPoint(6, 0.5),
                          SweepPoint(8, 0.0), SweepPoint(8, 0.5)]
        assert plan_size(spec) == 4 * spec.trials


class TestRunTrial:
    def test_reproducible(self):
        spec = make_spec()
        first = run_trial(spec, SweepPoint(6), 0)
        again = run_trial(spec, SweepPoint(6), 0)
        assert first == again

    def test_record_shape(self):
        record = run_trial(make_spec(), SweepPoint(6), 1)
        assert record["kind"] == "trial"
        assert record["n"] == 6 and record["trial"] == 1
        assert record["correct"] is True  # epidemic with one 1 is true
        assert record["output"] == 1
        assert record["converged_at"] <= record["interactions"]

    def test_faulty_trial_counts_faults(self):
        spec = make_spec(ns=(10,),
                         faults=FaultAxis("crash-at", (2.0,), at_step=5))
        record = run_trial(spec, SweepPoint(10, 2.0), 0)
        assert record["crashes"] == 2

    def test_correct_stable_needs_a_predicate(self):
        spec = make_spec(protocol="leader-election",
                         inputs=InputGrid(kind="all-ones"),
                         stop=StopRule(rule="correct-stable",
                                       max_steps=10_000))
        with pytest.raises(ValueError, match="correct-stable"):
            run_trial(spec, SweepPoint(6), 0)

    def test_silent_rule_measures_election_hitting_time(self):
        spec = make_spec(protocol="leader-election",
                         inputs=InputGrid(kind="all-ones"),
                         stop=StopRule(rule="silent", max_steps=100_000))
        record = run_trial(spec, SweepPoint(6), 0)
        assert record["stopped"]
        assert record["correct"] is None  # no ground-truth predicate
        assert 0 < record["converged_at"] <= record["interactions"]


class TestParallelSerialDeterminism:
    def test_worker_count_is_invisible(self):
        """Acceptance: workers=4 is byte-identical to workers=1."""
        spec = make_spec()
        serial = run_experiment(spec, workers=1)
        parallel = run_experiment(spec, workers=4)
        assert serial.records == parallel.records
        assert trials_csv(serial.records) == trials_csv(parallel.records)

    def test_worker_count_is_invisible_with_fault_axis(self):
        spec = make_spec(trials=2,
                         faults=FaultAxis("omission-rate", (0.0, 0.4)))
        serial = run_experiment(spec, workers=1)
        parallel = run_experiment(spec, workers=3)
        assert serial.records == parallel.records

    def test_store_contents_identical_across_worker_counts(self, tmp_path):
        spec = make_spec()
        store1 = ResultStore(tmp_path / "serial.jsonl")
        store4 = ResultStore(tmp_path / "parallel.jsonl")
        run_experiment(spec, store=store1, workers=1)
        run_experiment(spec, store=store4, workers=4)
        key = lambda r: (r["n"], r["trial"])
        assert sorted(store1.records(), key=key) == \
            sorted(store4.records(), key=key)


class TestChunkedDispatch:
    def test_chunk_size_load_balances_and_caps(self):
        from repro.exp.runner import _CHUNK_CAP, _chunk_size

        assert _chunk_size(1, 4) == 1        # floor at 1
        assert _chunk_size(100, 4) == 6      # n // (workers * 4)
        # Huge task counts no longer produce huge chunks: one straggler
        # chunk can stall a sweep for at most _CHUNK_CAP trials.
        assert _chunk_size(100_000, 4) == _CHUNK_CAP == 64
        assert _chunk_size(0, 8) == 1

    @pytest.mark.parametrize("cap", [1, 2, 64])
    def test_records_identical_across_chunk_sizes(self, cap, monkeypatch):
        import repro.exp.runner as runner_mod

        spec = make_spec(trials=4)
        serial = run_experiment(spec, workers=1)
        monkeypatch.setattr(runner_mod, "_CHUNK_CAP", cap)
        chunked = run_experiment(spec, workers=2)
        assert json.dumps(serial.records, sort_keys=True) == \
            json.dumps(chunked.records, sort_keys=True)


class TestResume:
    def test_completed_spec_executes_zero_new_trials(self, tmp_path):
        """Acceptance: re-running a completed spec is a no-op."""
        spec = make_spec()
        path = tmp_path / "r.jsonl"
        first = run_experiment(spec, store=ResultStore(path), workers=2)
        assert first.executed == plan_size(spec)

        executed_again = []
        second = run_experiment(spec, store=ResultStore(path), workers=2,
                                progress=executed_again.append)
        assert second.executed == 0
        assert executed_again == []
        assert second.skipped == plan_size(spec)
        assert second.records == first.records

    def test_truncated_store_reruns_only_missing_trials(self, tmp_path):
        """Acceptance: interrupt mid-sweep, resume, only the gap runs."""
        spec = make_spec()
        path = tmp_path / "r.jsonl"
        complete = run_experiment(spec, store=ResultStore(path), workers=1)

        # Simulate an interrupt: cut the file mid-record, losing the last
        # record entirely and tearing the one before it.
        lines = path.read_bytes().splitlines(keepends=True)
        torn = b"".join(lines[:-2]) + lines[-2][:20]
        path.write_bytes(torn)

        store = ResultStore(path)
        survivors = len(store)
        assert survivors == plan_size(spec) - 2

        resumed = run_experiment(spec, store=store, workers=2)
        assert resumed.executed == 2
        assert resumed.skipped == survivors
        assert resumed.records == complete.records
        assert trials_csv(resumed.records) == trials_csv(complete.records)

    def test_resume_works_without_a_store(self):
        # store=None simply runs everything, every time.
        spec = make_spec(ns=(6,), trials=2)
        first = run_experiment(spec)
        second = run_experiment(spec)
        assert first.records == second.records
        assert second.executed == 2 and second.skipped == 0


class TestValidationAndErrors:
    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            run_experiment(make_spec(trials=0))

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ValueError):
            run_experiment(make_spec(), workers=0)

    def test_unknown_protocol_surfaces(self):
        with pytest.raises(KeyError):
            run_experiment(make_spec(protocol="warp-drive", ns=(6,),
                                     trials=1))


class TestSchedulerAxis:
    def test_sweep_points_cross_scheduler_axis(self):
        spec = make_spec(schedulers=("uniform", "eclipse:budget=100"))
        points = sweep_points(spec)
        assert len(points) == 4  # 2 ns x 2 schedulers
        assert {p.scheduler for p in points} == {"uniform",
                                                 "eclipse:budget=100"}

    def test_point_key_segment_only_when_swept(self):
        assert SweepPoint(8).key == "n=8"
        assert SweepPoint(8, 0.5).key == "n=8;intensity=0.5"
        assert (SweepPoint(8, None, "eclipse:budget=3").key
                == "n=8;scheduler=eclipse:budget=3")

    def test_legacy_record_shape_preserved(self):
        # Without monitors or a scheduler axis, records keep their
        # pre-chaos shape: no "scheduler", no "violation" keys.
        record = run_trial(make_spec(), SweepPoint(6), 0)
        assert "scheduler" not in record
        assert "violation" not in record

    def test_scheduler_axis_is_deterministic(self):
        spec = make_spec(schedulers=("uniform", "partition:heal=200"))
        first = run_experiment(spec).records
        second = run_experiment(spec).records
        assert first == second


class TestMonitoredTrials:
    def test_clean_monitored_trial_records_null_violation(self):
        spec = make_spec(monitors=("conservation", "containment"))
        record = run_trial(spec, SweepPoint(6), 0)
        assert record["violation"] is None
        assert record["stopped"]

    def test_main_run_violation_roundtrips_through_store(self, tmp_path):
        # First arm of run_trial: the stopping-rule run itself raises
        # MonitorViolation.  A never-healing partition leaves one leader
        # per block; the cross-block leader pair stays enabled but is
        # never scheduled, so the fairness budget runs out mid-run.
        spec = make_spec(protocol="leader-election", ns=(10,), trials=1,
                         inputs=InputGrid(kind="all-ones"),
                         scheduler="partition:heal=1000000000",
                         monitors=("fairness:budget=400",),
                         stop=StopRule(patience=5_000, max_steps=200_000))
        path = tmp_path / "r.jsonl"
        result = run_experiment(spec, store=ResultStore(path))
        record = result.records[0]
        violation = record["violation"]
        assert violation is not None
        assert violation["monitor"] == "fairness"
        assert violation["detail"]["budget"] == 400
        # The violation aborted the main run: no stop verdict exists.
        assert record["stopped"] is False
        assert record["output"] is None

        reopened = ResultStore(path)
        stored = reopened.records()[0]
        # JSON-normalized comparison: the live record may hold tuples
        # where the store (by construction) yields lists.
        assert json.dumps(stored, sort_keys=True) == \
            json.dumps(record, sort_keys=True)
        context = stored["violation"]["context"]
        assert context["protocol"] == "leader-election"
        assert context["scheduler"] == "partition:heal=1000000000"
        assert context["engine_seed"] == record["engine_seed"]

    def test_confirm_phase_violation_roundtrips_through_store(self,
                                                              tmp_path):
        # Second arm of run_trial: the flicker monitor is inert until
        # armed *after* the stopping rule fires, so a flicker violation
        # can only come from the confirm-phase arm.
        spec = ExperimentSpec(
            protocol="majority", ns=(10,), trials=1,
            inputs=InputGrid(kind="ones", ones=6),
            faults=FaultAxis("corruption-rate", (0.005,)),
            monitors=("flicker",),
            confirm=4_000,
            stop=StopRule(rule="quiescent", patience=600, max_steps=60_000),
            seed=0)
        path = tmp_path / "r.jsonl"
        result = run_experiment(spec, store=ResultStore(path))
        record = result.records[0]
        violation = record["violation"]
        assert violation is not None, \
            "confirm-phase corruption should trip the armed flicker monitor"
        assert violation["monitor"] == "flicker"
        # Armed at the stop verdict, tripped strictly afterwards.
        assert record["stopped"] is True
        assert violation["step"] > violation["detail"]["stabilized_at"]

        reopened = ResultStore(path)
        stored = reopened.records()[0]
        assert stored == record
        context = stored["violation"]["context"]
        assert context["confirm"] == 4_000
        assert context["fault"] == {"kind": "corruption-rate",
                                    "intensity": 0.005}

    def test_violation_record_carries_reproduction_context(self):
        spec = ExperimentSpec(
            protocol="majority", ns=(10,), trials=1,
            inputs=InputGrid(kind="ones", ones=6),
            faults=FaultAxis("corruption-rate", (0.005,)),
            monitors=("conservation", "containment", "flicker"),
            confirm=4_000,
            stop=StopRule(rule="quiescent", patience=600, max_steps=60_000),
            seed=0)
        result = run_experiment(spec)
        violated = [r for r in result.records
                    if r.get("violation") is not None]
        assert violated, "corruption should trip the flicker monitor"
        violation = violated[0]["violation"]
        context = violation["context"]
        assert context["protocol"] == "majority"
        assert context["engine_seed"] == violated[0]["engine_seed"]
        assert context["fault"] == {"kind": "corruption-rate",
                                    "intensity": 0.005}
        assert sum(int(c) for c in context["counts"].values()) == 10


class TestBatchedEngine:
    def test_records_identical_to_agent_engine(self):
        # Same spec hash (forced) => same derived seeds => the batched
        # engine must reproduce the agent engine's records field for
        # field; this is the fingerprint guarantee surfacing at the
        # experiment layer.
        agent_spec = make_spec(protocol="majority", ns=(60,), trials=3,
                               inputs=InputGrid(kind="ones", ones=20))
        batched_spec = make_spec(protocol="majority", ns=(60,), trials=3,
                                 inputs=InputGrid(kind="ones", ones=20),
                                 engine="batched")
        forced_hash = agent_spec.content_hash()
        for point in sweep_points(agent_spec):
            for trial in range(agent_spec.trials):
                a = run_trial(agent_spec, point, trial,
                              spec_hash=forced_hash)
                b = run_trial(batched_spec, point, trial,
                              spec_hash=forced_hash)
                assert b.pop("engine") == "batched"
                assert a == b

    def test_agent_records_carry_no_engine_key(self):
        spec = make_spec()
        record = run_trial(spec, sweep_points(spec)[0], 0)
        assert "engine" not in record

    def test_run_experiment_with_batched_engine(self):
        result = run_experiment(make_spec(protocol="leader-election",
                                          ns=(24,), trials=2,
                                          inputs=InputGrid(),
                                          engine="batched"))
        assert result.executed == 2
        assert all(r["engine"] == "batched" for r in result.records)

    def test_batched_worker_pool_matches_serial(self):
        spec = make_spec(protocol="majority", ns=(30, 40), trials=2,
                         inputs=InputGrid(kind="ones", ones=10),
                         engine="batched")
        serial = run_experiment(spec, workers=1)
        parallel = run_experiment(spec, workers=3)
        assert serial.records == parallel.records


class TestBackendProvenance:
    def test_python_backend_records_identical_plus_backend_key(self):
        # The kernel-backend contract surfacing at the experiment
        # layer: bit-identical records, plus the provenance key.
        base = make_spec(protocol="majority", ns=(60,), trials=2,
                         inputs=InputGrid(kind="ones", ones=20),
                         engine="batched")
        alt = make_spec(protocol="majority", ns=(60,), trials=2,
                        inputs=InputGrid(kind="ones", ones=20),
                        engine="batched", backend="python")
        forced_hash = base.content_hash()
        for point in sweep_points(base):
            for trial in range(base.trials):
                a = run_trial(base, point, trial, spec_hash=forced_hash)
                b = run_trial(alt, point, trial, spec_hash=forced_hash)
                assert b.pop("backend") == "python"
                assert a == b
                assert "backend" not in a

    def test_ensemble_records_carry_backend(self):
        spec = make_spec(ns=(8,), trials=2, engine="ensemble",
                         backend="python")
        result = run_experiment(spec)
        assert all(r["backend"] == "python" for r in result.records)
        default = run_experiment(make_spec(ns=(8,), trials=2,
                                           engine="ensemble"))
        assert all("backend" not in r for r in default.records)

    def test_fallback_records_stay_unmarked(self):
        # An unavailable backend falls back to numpy; the record then
        # reports what actually ran (nothing — numpy is the default),
        # not what was requested.
        import warnings

        from repro.sim.backends import (available_backends,
                                        reset_backend_warnings)

        if "numba" in available_backends():
            pytest.skip("numba is installed here")
        spec = make_spec(ns=(8,), trials=1, engine="batched",
                         backend="numba")
        reset_backend_warnings()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            record = run_trial(spec, SweepPoint(8), 0)
        assert "backend" not in record
        reset_backend_warnings()


class TestEnsembleEngine:
    def test_run_experiment_executes_all_trials(self):
        spec = make_spec(protocol="leader-election", ns=(24,), trials=4,
                         inputs=InputGrid(),
                         stop=StopRule(rule="silent", max_steps=100_000),
                         engine="ensemble")
        result = run_experiment(spec)
        assert result.executed == 4
        assert all(r["engine"] == "ensemble" for r in result.records)
        assert all(r["stopped"] for r in result.records)

    def test_record_shape_matches_scalar_plus_engine_key(self):
        spec = make_spec(engine="ensemble")
        scalar_spec = make_spec()
        ensemble_record = run_experiment(spec).records[0]
        scalar_record = run_trial(scalar_spec, SweepPoint(6), 0)
        assert set(ensemble_record) == set(scalar_record) | {"engine"}
        assert ensemble_record["correct"] is True  # epidemic, one 1
        assert (ensemble_record["converged_at"]
                <= ensemble_record["interactions"])

    def test_records_carry_trial_seed_identities(self):
        spec = make_spec(ns=(8,), trials=3, engine="ensemble")
        result = run_experiment(spec)
        for record in result.records:
            engine_seed, fault_seed = trial_seeds(
                result.spec_hash, SweepPoint(8), record["trial"])
            assert record["engine_seed"] == engine_seed
            assert record["fault_seed"] == fault_seed

    def test_worker_pool_matches_serial(self):
        spec = make_spec(ns=(8, 12, 16), trials=3, engine="ensemble")
        serial = run_experiment(spec, workers=1)
        parallel = run_experiment(spec, workers=3)
        assert serial.records == parallel.records

    def test_completed_spec_resumes_to_zero_executed(self, tmp_path):
        spec = make_spec(ns=(8,), trials=3, engine="ensemble")
        path = tmp_path / "e.jsonl"
        first = run_experiment(spec, store=ResultStore(path))
        assert first.executed == 3
        second = run_experiment(spec, store=ResultStore(path))
        assert second.executed == 0
        assert second.skipped == 3
        assert second.records == first.records

    def test_correct_stable_needs_a_predicate(self):
        spec = make_spec(protocol="leader-election",
                         inputs=InputGrid(kind="all-ones"),
                         stop=StopRule(rule="correct-stable",
                                       max_steps=10_000),
                         engine="ensemble")
        with pytest.raises(ValueError, match="correct-stable"):
            run_experiment(spec)


class TestFluidEngine:
    def test_run_experiment_executes_all_trials(self):
        spec = make_spec(protocol="leader-election", ns=(24,), trials=4,
                         inputs=InputGrid(),
                         stop=StopRule(rule="silent", max_steps=100_000),
                         engine="fluid")
        result = run_experiment(spec)
        assert result.executed == 4
        assert all(r["engine"] == "fluid" for r in result.records)
        assert all(r["stopped"] for r in result.records)

    def test_trials_are_deterministic_copies(self):
        # One integration per point: every trial record carries the same
        # measurements but its own identity and (recorded, unused) seeds.
        spec = make_spec(ns=(8,), trials=3, engine="fluid")
        records = run_experiment(spec).records
        assert len({r["converged_at"] for r in records}) == 1
        assert len({r["interactions"] for r in records}) == 1
        assert len({r["trial"] for r in records}) == 3
        assert len({r["engine_seed"] for r in records}) == 3

    def test_astronomical_population_hits_the_closed_form(self):
        # The acceptance headline: n = 1e9 leader election to silence.
        # The fluid hitting time is n(n-1) interactions.
        n = 10 ** 9
        spec = make_spec(protocol="leader-election", ns=(n,), trials=1,
                         inputs=InputGrid(),
                         stop=StopRule(rule="silent",
                                       max_steps=2 * 10 ** 18),
                         engine="fluid")
        record = run_experiment(spec).records[0]
        assert record["stopped"]
        assert record["converged_at"] == pytest.approx(n * (n - 1),
                                                       rel=1e-3)

    def test_record_shape_matches_scalar_plus_engine_key(self):
        fluid_record = run_experiment(make_spec(engine="fluid")).records[0]
        scalar_record = run_trial(make_spec(), SweepPoint(6), 0)
        assert set(fluid_record) == set(scalar_record) | {"engine"}

    def test_worker_pool_matches_serial(self):
        spec = make_spec(ns=(8, 12, 16), trials=2, engine="fluid")
        assert (run_experiment(spec, workers=1).records
                == run_experiment(spec, workers=3).records)

    def test_completed_spec_resumes_to_zero_executed(self, tmp_path):
        spec = make_spec(ns=(8,), trials=3, engine="fluid")
        path = tmp_path / "f.jsonl"
        first = run_experiment(spec, store=ResultStore(path))
        assert first.executed == 3
        second = run_experiment(spec, store=ResultStore(path))
        assert second.executed == 0
        assert second.skipped == 3
        assert second.records == first.records
