"""Tests for the declarative experiment spec."""

import pytest

from repro.exp.spec import (
    ExecutionPolicy,
    ExperimentSpec,
    FaultAxis,
    InputGrid,
    StopRule,
)
from repro.sim.faults import FaultPlan


def make_spec(**overrides) -> ExperimentSpec:
    base = dict(protocol="epidemic", ns=(6, 8), trials=2,
                inputs=InputGrid(kind="ones", ones=1),
                stop=StopRule(patience=500, max_steps=20_000), seed=7)
    base.update(overrides)
    return ExperimentSpec(**base)


class TestSerialization:
    def test_dict_round_trip(self):
        spec = make_spec(params={"k": 3},
                         faults=FaultAxis("omission-rate", (0.0, 0.3)))
        again = ExperimentSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.content_hash() == spec.content_hash()

    def test_explicit_table_round_trip_coerces_symbols(self):
        spec = make_spec(ns=(5,),
                         inputs=InputGrid.explicit({5: {1: 2, 0: 3}}))
        again = ExperimentSpec.from_dict(spec.to_dict())
        # JSON stringifies the 0/1 symbols; from_dict restores ints.
        assert again.inputs.counts_for(5) == {1: 2, 0: 3}
        assert again.content_hash() == spec.content_hash()

    def test_json_round_trip(self):
        import json

        spec = make_spec()
        again = ExperimentSpec.from_dict(json.loads(spec.canonical_json()))
        assert again == spec


class TestContentHash:
    def test_stable_across_instances(self):
        assert make_spec().content_hash() == make_spec().content_hash()

    def test_every_field_feeds_the_hash(self):
        base = make_spec()
        variants = [
            make_spec(protocol="majority"),
            make_spec(ns=(6, 8, 10)),
            make_spec(trials=3),
            make_spec(params={"k": 9}),
            make_spec(inputs=InputGrid(kind="ones", ones=2)),
            make_spec(faults=FaultAxis("crash-rate", (0.1,))),
            make_spec(stop=StopRule(patience=501, max_steps=20_000)),
            make_spec(seed=8),
        ]
        hashes = {spec.content_hash() for spec in variants}
        assert base.content_hash() not in hashes
        assert len(hashes) == len(variants)

    def test_short_hash_prefixes_full(self):
        spec = make_spec()
        assert spec.content_hash().startswith(spec.short_hash)
        assert len(spec.short_hash) == 12


class TestValidation:
    def test_valid_spec_passes(self):
        make_spec().validate()

    @pytest.mark.parametrize("overrides", [
        {"protocol": ""},
        {"ns": ()},
        {"ns": (1, 8)},
        {"ns": (8, 8)},
        {"trials": 0},
        {"scheduler": "warp"},
        {"inputs": InputGrid(kind="nope")},
        {"inputs": InputGrid(kind="ones", ones=None)},
        {"inputs": InputGrid(kind="ones", ones=9)},  # ones > min(ns)=6
        {"inputs": InputGrid(kind="fraction", fraction=1.5)},
        {"inputs": InputGrid(kind="explicit", table=None)},
        {"inputs": InputGrid.explicit({6: {1: 1}})},  # missing n=8
        {"faults": FaultAxis("omission-rate", ())},
        {"faults": FaultAxis("warp-rate", (0.1,))},
        {"faults": FaultAxis("crash-rate", (1.5,))},
        {"faults": FaultAxis("crash-at", (1.5,))},
        {"stop": StopRule(rule="sometime")},
        {"stop": StopRule(patience=0)},
        {"stop": StopRule(max_steps=0)},
    ])
    def test_bad_specs_rejected(self, overrides):
        with pytest.raises(ValueError):
            make_spec(**overrides).validate()


class TestInputGrid:
    def test_all_ones(self):
        assert InputGrid(kind="all-ones").counts_for(7) == {1: 7}

    def test_fixed_ones(self):
        assert InputGrid(kind="ones", ones=2).counts_for(10) == {1: 2, 0: 8}

    def test_fraction_floors(self):
        grid = InputGrid(kind="fraction", fraction=0.05)
        assert grid.counts_for(20) == {1: 1, 0: 19}
        assert grid.counts_for(39) == {1: 1, 0: 38}
        assert grid.counts_for(40) == {1: 2, 0: 38}

    def test_explicit(self):
        grid = InputGrid.explicit({6: {"a": 2, "b": 4}})
        assert grid.counts_for(6) == {"a": 2, "b": 4}


class TestFaultAxis:
    def test_zero_intensity_is_fault_free(self):
        axis = FaultAxis("omission-rate", (0.0, 0.5))
        assert axis.build_plan(0.0, seed=1) is None

    @pytest.mark.parametrize("kind", ["crash-rate", "corruption-rate",
                                      "omission-rate"])
    def test_rate_kinds_build_plans(self, kind):
        plan = FaultAxis(kind, (0.2,)).build_plan(0.2, seed=1)
        assert isinstance(plan, FaultPlan)
        assert len(plan.models) == 1

    def test_crash_at_uses_count_and_step(self):
        plan = FaultAxis("crash-at", (3.0,), at_step=40).build_plan(3.0, 1)
        model = plan.models[0]
        assert model.step == 40
        assert model.count == 3


class TestChaosFields:
    """The chaos-only fields (schedulers/monitors/confirm) must not
    disturb any spec written before they existed."""

    def test_defaults_stay_out_of_the_dict(self):
        data = make_spec().to_dict()
        assert "schedulers" not in data
        assert "monitors" not in data
        assert "confirm" not in data

    def test_explicit_defaults_hash_like_legacy_specs(self):
        legacy = make_spec()
        explicit = make_spec(schedulers=(), monitors=(), confirm=0)
        assert explicit.content_hash() == legacy.content_hash()

    def test_set_fields_round_trip_and_feed_the_hash(self):
        base = make_spec()
        variants = [
            make_spec(schedulers=("uniform", "eclipse:budget=100")),
            make_spec(monitors=("conservation", "flicker")),
            make_spec(confirm=500),
        ]
        for spec in variants:
            again = ExperimentSpec.from_dict(spec.to_dict())
            assert again == spec
            assert spec.content_hash() != base.content_hash()

    def test_adversarial_scheduler_spec_accepted(self):
        make_spec(scheduler="partition:blocks=2,heal=100").validate()
        make_spec(schedulers=("uniform", "eclipse:budget=10")).validate()

    @pytest.mark.parametrize("overrides", [
        {"schedulers": ("warp",)},
        {"schedulers": ("uniform", "uniform")},  # duplicate axis value
        {"monitors": ("warp",)},
        {"monitors": ("fairness:budget=x",)},
        {"confirm": -1},
    ])
    def test_bad_chaos_fields_rejected(self, overrides):
        with pytest.raises(ValueError):
            make_spec(**overrides).validate()


class TestEngineField:
    def test_defaults_to_agent_and_stays_out_of_the_hash(self):
        spec = make_spec()
        assert spec.engine == "agent"
        # Hash preservation: specs written before the field existed must
        # keep their exact content hash, so the default never serializes.
        assert "engine" not in spec.to_dict()
        assert (make_spec(engine="agent").content_hash()
                == spec.content_hash())

    def test_batched_round_trips_and_changes_the_hash(self):
        spec = make_spec(engine="batched")
        data = spec.to_dict()
        assert data["engine"] == "batched"
        assert ExperimentSpec.from_dict(data).engine == "batched"
        assert spec.content_hash() != make_spec().content_hash()

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            make_spec(engine="quantum").validate()

    def test_batched_accepts_every_fault_kind(self):
        for kind, intensities, at_step in (
                ("crash-rate", (0.1,), None),
                ("corruption-rate", (0.05,), None),
                ("omission-rate", (0.3,), None),
                ("crash-at", (5,), 100)):
            make_spec(engine="batched",
                      faults=FaultAxis(kind, intensities,
                                       at_step=at_step)).validate()

    def test_batched_accepts_vectorized_monitors(self):
        make_spec(engine="batched",
                  monitors=("conservation", "containment",
                            "flicker")).validate()

    def test_batched_rejects_scalar_only_monitors(self):
        for monitor in ("fairness", "watchdog:steps=100"):
            with pytest.raises(ValueError, match="monitors"):
                make_spec(engine="batched", monitors=(monitor,)).validate()

    def test_batched_rejects_non_uniform_scheduler(self):
        with pytest.raises(ValueError, match="scheduler"):
            make_spec(engine="batched", scheduler="stalling").validate()
        with pytest.raises(ValueError, match="scheduler axis"):
            make_spec(engine="batched",
                      schedulers=("uniform", "stalling")).validate()


class TestBackendField:
    def test_defaults_to_numpy_and_stays_out_of_the_hash(self):
        spec = make_spec()
        assert spec.backend == "numpy"
        # Hash preservation: specs written before kernel backends
        # existed must keep their exact content hash, so the default
        # never serializes.
        assert "backend" not in spec.to_dict()
        assert (make_spec(backend="numpy").content_hash()
                == spec.content_hash())

    def test_non_default_round_trips_and_changes_the_hash(self):
        spec = make_spec(engine="batched", backend="python")
        data = spec.to_dict()
        assert data["backend"] == "python"
        again = ExperimentSpec.from_dict(data)
        assert again.backend == "python"
        assert again.content_hash() == spec.content_hash()
        assert (spec.content_hash()
                != make_spec(engine="batched").content_hash())

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            make_spec(engine="batched", backend="cuda").validate()

    def test_backend_requires_a_backend_capable_engine(self):
        with pytest.raises(ValueError, match="has no step-kernel backends"):
            make_spec(engine="agent", backend="python").validate()
        for engine in ("batched", "ensemble"):
            make_spec(engine=engine, backend="python").validate()

    def test_numba_request_validates_even_when_uninstalled(self):
        # Validation checks the name against the registry, not the
        # probe: a spec authored on a numba machine must load and
        # validate anywhere (the engine falls back at run time).
        make_spec(engine="batched", backend="numba").validate()

    def test_batched_uniform_fault_free_passes(self):
        make_spec(engine="batched").validate()

    def test_ensemble_round_trips_and_changes_the_hash(self):
        spec = make_spec(engine="ensemble")
        data = spec.to_dict()
        assert data["engine"] == "ensemble"
        assert ExperimentSpec.from_dict(data).engine == "ensemble"
        assert spec.content_hash() != make_spec().content_hash()
        assert spec.content_hash() != make_spec(engine="batched").content_hash()

    @pytest.mark.parametrize("overrides,match", [
        ({"monitors": ("flicker",)}, "monitors"),
        ({"scheduler": "stalling"}, "scheduler"),
        ({"schedulers": ("uniform", "stalling")}, "scheduler axis"),
        ({"confirm": 500}, "confirm"),
    ])
    def test_ensemble_rejects_unsupported_features(self, overrides, match):
        with pytest.raises(ValueError, match=match):
            make_spec(engine="ensemble", **overrides).validate()

    def test_ensemble_accepts_fault_axes_and_vector_monitors(self):
        make_spec(engine="ensemble",
                  faults=FaultAxis("omission-rate", (0.0, 0.3)),
                  monitors=("conservation", "containment")).validate()
        make_spec(engine="ensemble",
                  faults=FaultAxis("crash-at", (5,),
                                   at_step=100)).validate()

    def test_ensemble_uniform_fault_free_passes(self):
        make_spec(engine="ensemble").validate()

    def test_fluid_round_trips_and_changes_the_hash(self):
        spec = make_spec(engine="fluid")
        data = spec.to_dict()
        assert data["engine"] == "fluid"
        assert ExperimentSpec.from_dict(data).engine == "fluid"
        assert spec.content_hash() != make_spec().content_hash()
        assert spec.content_hash() != make_spec(engine="ensemble").content_hash()

    @pytest.mark.parametrize("overrides,match", [
        ({"faults": FaultAxis("crash-at", (5,), at_step=100)},
         "crash-at"),
        ({"monitors": ("conservation",)}, "monitors"),
        ({"scheduler": "stalling"}, "scheduler"),
        ({"schedulers": ("uniform", "stalling")}, "scheduler axis"),
        ({"confirm": 500}, "confirm"),
    ])
    def test_fluid_rejects_unsupported_features(self, overrides, match):
        # crash-at is rejected per *kind*: step-indexed faults have no
        # mean-field limit, while the rate kinds below are fine.
        with pytest.raises(ValueError, match=match):
            make_spec(engine="fluid", **overrides).validate()

    def test_fluid_accepts_rate_fault_axes(self):
        for kind in ("crash-rate", "corruption-rate", "omission-rate"):
            make_spec(engine="fluid",
                      faults=FaultAxis(kind, (0.0, 0.2))).validate()

    def test_fluid_uniform_fault_free_passes(self):
        make_spec(engine="fluid").validate()

    def test_engines_tuple_tracks_the_feature_table(self):
        from repro.exp.spec import ENGINE_FEATURES, ENGINES

        assert ENGINES == tuple(ENGINE_FEATURES)
        assert "fluid" in ENGINES

    def test_unknown_engine_message_lists_fluid(self):
        with pytest.raises(ValueError, match="fluid"):
            make_spec(engine="quantum").validate()


class TestEngineValidationMessages:
    """Rejecting a spec must name the offending field and point at an
    engine that supports it — a rejected spec is a one-edit fix."""

    def test_names_offending_field_and_supporting_engine(self):
        spec = make_spec(engine="ensemble", monitors=("flicker",))
        with pytest.raises(ValueError) as err:
            spec.validate()
        message = str(err.value)
        assert "engine 'ensemble'" in message
        assert "'monitors'" in message
        assert "monitor 'flicker'" in message
        assert "engine 'agent'" in message
        assert "reference engine" in message

    def test_confirm_names_both_supporting_engines(self):
        spec = make_spec(engine="ensemble", confirm=100)
        with pytest.raises(ValueError) as err:
            spec.validate()
        message = str(err.value)
        assert "'confirm'" in message
        assert "engine 'agent' and engine 'batched'" in message

    def test_every_problem_is_listed(self):
        spec = make_spec(engine="batched",
                         monitors=("fairness",),
                         scheduler="stalling")
        with pytest.raises(ValueError) as err:
            spec.validate()
        message = str(err.value)
        assert "'monitors'" in message
        assert "'scheduler'" in message
        assert "'stalling'" in message

    def test_per_kind_rejection_names_kind_and_engines(self):
        spec = make_spec(engine="fluid",
                         faults=FaultAxis("crash-at", (5,), at_step=10))
        with pytest.raises(ValueError) as err:
            spec.validate()
        message = str(err.value)
        assert "fault kind 'crash-at'" in message
        # Every engine that does sample crash-at is enumerated.
        assert "engine 'agent'" in message
        assert "engine 'batched'" in message
        assert "engine 'ensemble'" in message


class TestExecutionPolicy:
    """The execution block must be hash-stable when defaulted: specs
    (and stores) written before supervision existed keep their ids."""

    def test_default_stays_out_of_dict_and_hash(self):
        spec = make_spec()
        assert "execution" not in spec.to_dict()
        explicit = make_spec(execution=ExecutionPolicy())
        assert explicit.content_hash() == spec.content_hash()
        assert ExecutionPolicy().is_default()

    def test_non_default_round_trips_and_feeds_the_hash(self):
        policy = ExecutionPolicy(timeout_s=30.0, max_attempts=3,
                                 backoff=1.0, on_error="quarantine")
        spec = make_spec(execution=policy)
        data = spec.to_dict()
        assert data["execution"]["timeout_s"] == 30.0
        again = ExperimentSpec.from_dict(data)
        assert again.execution == policy
        assert not again.execution.is_default()
        assert spec.content_hash() != make_spec().content_hash()

    def test_each_field_feeds_the_hash(self):
        base = make_spec()
        variants = [
            make_spec(execution=ExecutionPolicy(timeout_s=10.0)),
            make_spec(execution=ExecutionPolicy(max_attempts=2)),
            make_spec(execution=ExecutionPolicy(backoff=0.25)),
            make_spec(execution=ExecutionPolicy(on_error="skip")),
        ]
        hashes = {spec.content_hash() for spec in variants}
        assert base.content_hash() not in hashes
        assert len(hashes) == len(variants)

    @pytest.mark.parametrize("policy", [
        ExecutionPolicy(timeout_s=0.0),
        ExecutionPolicy(timeout_s=-1.0),
        ExecutionPolicy(max_attempts=0),
        ExecutionPolicy(backoff=-0.5),
        ExecutionPolicy(on_error="explode"),
    ])
    def test_bad_policies_rejected(self, policy):
        with pytest.raises(ValueError):
            make_spec(execution=policy).validate()
