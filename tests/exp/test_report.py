"""Tests for experiment aggregation and export."""

import csv
import io
import math

import pytest

from repro.exp.report import (
    aggregate,
    format_report,
    report_dict,
    scaling,
    summary_csv,
    trials_csv,
)
from repro.exp.runner import run_experiment
from repro.exp.spec import ExperimentSpec, FaultAxis, InputGrid, StopRule


def record(n, trial, converged_at, *, intensity=None, correct=True):
    return {"kind": "trial", "id": f"{n}-{intensity}-{trial}", "n": n,
            "intensity": intensity, "trial": trial, "engine_seed": 1,
            "fault_seed": 2, "interactions": 10 * converged_at,
            "converged_at": converged_at, "output": 1, "correct": correct,
            "stopped": True, "crashes": 0, "corruptions": 0, "omissions": 0}


QUADRATIC = [record(n, t, n * n)
             for n in (8, 16, 32) for t in range(3)]


class TestAggregate:
    def test_groups_by_point(self):
        aggs = aggregate(QUADRATIC)
        assert [(a.n, a.trials) for a in aggs] == [(8, 3), (16, 3), (32, 3)]
        assert aggs[0].summary.mean == pytest.approx(64.0)
        assert aggs[0].rate == 1.0

    def test_input_order_is_irrelevant(self):
        assert aggregate(QUADRATIC) == aggregate(QUADRATIC[::-1])

    def test_metric_selection(self):
        aggs = aggregate(QUADRATIC, metric="interactions")
        assert aggs[0].summary.mean == pytest.approx(640.0)

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            aggregate(QUADRATIC, metric="vibes")

    def test_non_predicate_records_have_no_rate(self):
        aggs = aggregate([record(8, 0, 49, correct=None)])
        assert aggs[0].correct is None
        assert aggs[0].rate is None

    def test_intensity_axis_separates_points(self):
        records = [record(8, t, 60 + t, intensity=x)
                   for x in (0.0, 0.5) for t in range(2)]
        aggs = aggregate(records)
        assert [(a.n, a.intensity) for a in aggs] == [(8, 0.0), (8, 0.5)]


class TestScaling:
    def test_exponent_fit(self):
        measurement = scaling(aggregate(QUADRATIC))
        assert measurement.ns == [8, 16, 32]
        assert measurement.exponent() == pytest.approx(2.0, abs=0.01)

    def test_selects_intensity(self):
        records = ([record(n, 0, n * n, intensity=0.0) for n in (8, 16)]
                   + [record(n, 0, n * n * n, intensity=0.5)
                      for n in (8, 16)])
        flat = scaling(aggregate(records), intensity=0.0)
        cubic = scaling(aggregate(records), intensity=0.5)
        assert flat.exponent() == pytest.approx(2.0, abs=0.01)
        assert cubic.exponent() == pytest.approx(3.0, abs=0.01)

    def test_missing_intensity_rejected(self):
        with pytest.raises(ValueError, match="no points at intensity"):
            scaling(aggregate(QUADRATIC), intensity=0.7)


class TestFormatReport:
    def test_table_contains_points_and_fit(self):
        text = format_report(aggregate(QUADRATIC))
        assert "mean converged_at" in text
        assert "fitted exponent" in text
        assert " 32 " in text or text.splitlines()[-2].lstrip().startswith("32")

    def test_fault_axis_column_appears(self):
        records = [record(8, t, 60, intensity=x)
                   for x in (0.0, 0.5) for t in range(2)]
        text = format_report(aggregate(records))
        assert "intensity" in text


class TestCsvExports:
    def test_trials_csv_is_order_independent(self):
        assert trials_csv(QUADRATIC) == trials_csv(QUADRATIC[::-1])

    def test_trials_csv_shape(self):
        rows = list(csv.reader(io.StringIO(trials_csv(QUADRATIC))))
        assert rows[0][0] == "n" and "converged_at" in rows[0]
        assert len(rows) == 1 + len(QUADRATIC)

    def test_summary_csv_shape(self):
        rows = list(csv.reader(io.StringIO(summary_csv(
            aggregate(QUADRATIC)))))
        assert rows[0][:3] == ["n", "intensity", "trials"]
        assert len(rows) == 4
        assert float(rows[1][3]) == pytest.approx(64.0)


class TestReportDict:
    def test_shape(self):
        data = report_dict(aggregate(QUADRATIC))
        assert data["metric"] == "converged_at"
        assert [p["n"] for p in data["points"]] == [8, 16, 32]
        assert data["fitted_exponents"]["fault-free"] == \
            pytest.approx(2.0, abs=0.01)

    def test_json_serializable_end_to_end(self):
        import json

        spec = ExperimentSpec(protocol="epidemic", ns=(6, 8), trials=2,
                              inputs=InputGrid(kind="ones", ones=1),
                              faults=FaultAxis("omission-rate", (0.0, 0.3)),
                              stop=StopRule(patience=400,
                                            max_steps=20_000), seed=3)
        result = run_experiment(spec)
        data = report_dict(aggregate(result.records), spec=spec)
        parsed = json.loads(json.dumps(data))
        assert parsed["spec_hash"] == spec.content_hash()
        assert len(parsed["points"]) == 4


class TestEmptyGroups:
    def test_aggregate_of_nothing_is_empty(self):
        assert aggregate([]) == []

    def test_nan_summaries_do_not_crash_the_report(self):
        # TrialSummary of an empty batch is all-nan; the formatter and
        # exporters must pass it through rather than raising.
        from repro.exp.report import PointAggregate
        from repro.sim.stats import TrialSummary

        empty = PointAggregate(n=8, intensity=None,
                               summary=TrialSummary([]), correct=None)
        assert math.isnan(empty.summary.mean)
        assert "nan" in format_report([empty])
        assert "nan" in summary_csv([empty])


class TestEngineAxis:
    def test_engine_separates_points(self):
        records = ([record(8, t, 49) for t in range(2)]
                   + [{**record(8, t, 56), "engine": "fluid"}
                      for t in range(2)])
        aggs = aggregate(records)
        assert [(a.n, a.engine) for a in aggs] == [(8, None), (8, "fluid")]

    def test_engine_column_rendered_when_mixed(self):
        records = ([record(8, 0, 49)]
                   + [{**record(8, 0, 56), "engine": "fluid"}])
        text = format_report(aggregate(records))
        assert "engine" in text
        assert "fluid" in text
        # Engineless records render as the reference engine.
        assert "agent" in text

    def test_engine_column_absent_when_uniform(self):
        assert "engine" not in format_report(aggregate(QUADRATIC))

    def test_summary_csv_carries_engine(self):
        aggs = aggregate([{**record(8, 0, 56), "engine": "fluid"}])
        rows = list(csv.reader(io.StringIO(summary_csv(aggs))))
        assert rows[0][-1] == "engine"
        assert rows[1][-1] == "fluid"

    def test_trials_csv_carries_engine(self):
        records = [{**record(8, 0, 56), "engine": "fluid"}]
        rows = list(csv.reader(io.StringIO(trials_csv(records))))
        assert rows[0][-1] == "engine"
        assert rows[1][-1] == "fluid"

    def test_report_dict_carries_engine_only_when_mixed(self):
        fluid = aggregate([{**record(8, 0, 56), "engine": "fluid"}])
        assert report_dict(fluid)["points"][0]["engine"] == "fluid"
        plain = report_dict(aggregate(QUADRATIC))
        assert "engine" not in plain["points"][0]
