"""Persistent warm worker fleet: reuse, transport, memoization.

The headline contracts, each asserted byte-for-byte against the legacy
paths:

* fleet records are identical to the in-process (``workers=1``) run and
  to the cold worker-pool run — the fleet changes *where* trials
  execute, never *what* they produce;
* a second submission of the same ``(spec, point, trial)`` is served
  from the content-addressed memo without dispatching a task, and the
  served record is byte-identical to the executed one;
* results ride the shared-memory ring when eligible and fall back to
  the pipe when the ring is disabled or too small — transport is
  invisible in the records;
* the full PR 6 supervision contract (timeouts, retries, crash
  recovery, quarantine) holds when trials run on fleet workers, with
  warm respawn replaying installed specs.

Failure modes are injected exactly as in ``test_supervise.py``: poison
input symbols of :mod:`repro.protocols.faulty` mapped per population
size.  This file is also the CI fleet smoke job (see
``.github/workflows/ci.yml``).
"""

import json

import pytest

from repro.exp.fleet import (
    WorkerFleet,
    fleet_report,
    get_fleet,
    shared_memory_reason,
    shutdown_fleet,
)
from repro.exp.runner import run_experiment
from repro.exp.spec import (
    ExecutionPolicy,
    ExperimentSpec,
    FaultAxis,
    InputGrid,
    StopRule,
)
from repro.exp.store import ResultStore
from repro.protocols import faulty
from repro.sim.backends import available_backends

faulty.install()

HEALTHY = {8: {1: 1, 0: 7}}

QUARANTINE = ExecutionPolicy(max_attempts=2, backoff=0.0,
                             on_error="quarantine")


def poison(mode: str, n: int = 9) -> dict:
    """One poison agent at population size ``n``, rest healthy."""
    return {n: {1: 1, 0: n - 2, mode: 1}}


def make_spec(**overrides) -> ExperimentSpec:
    base = dict(protocol="epidemic", ns=(6, 8), trials=3,
                inputs=InputGrid(kind="ones", ones=1),
                stop=StopRule(patience=500, max_steps=20_000), seed=7)
    base.update(overrides)
    return ExperimentSpec(**base)


def poison_spec(table: dict, *, policy: ExecutionPolicy,
                trials: int = 1, seed: int = 3) -> ExperimentSpec:
    return ExperimentSpec(
        protocol="misbehaving-epidemic", ns=tuple(sorted(table)),
        trials=trials, params={"poison": faulty.ALL_POISON},
        inputs=InputGrid.explicit(table),
        stop=StopRule(patience=200, max_steps=5_000),
        engine="agent", execution=policy, seed=seed)


@pytest.fixture
def marker_dir(tmp_path, monkeypatch):
    """Marker directory for the stateful poison modes (flaky, die)."""
    path = tmp_path / "markers"
    path.mkdir()
    monkeypatch.setenv(faulty.MARKER_DIR_ENV, str(path))
    return path


@pytest.fixture(params=available_backends())
def backend(request):
    return request.param


def dumps(records):
    return json.dumps(records, sort_keys=True)


class TestByteIdentity:
    def test_fleet_matches_in_process_run(self):
        spec = make_spec()
        serial = run_experiment(spec, workers=1)
        with WorkerFleet(2) as fleet:
            result = run_experiment(spec, fleet=fleet)
        assert dumps(result.records) == dumps(serial.records)
        assert result.fleet["workers"] == 2
        assert result.fleet["memo_hits"] == 0

    def test_fleet_matches_cold_pool(self):
        spec = make_spec(trials=4)
        pool = run_experiment(spec, workers=2)
        with WorkerFleet(2) as fleet:
            result = run_experiment(spec, fleet=fleet)
        assert dumps(result.records) == dumps(pool.records)

    def test_single_worker_fleet(self):
        spec = make_spec()
        serial = run_experiment(spec, workers=1)
        with WorkerFleet(1) as fleet:
            result = run_experiment(spec, fleet=fleet)
        assert dumps(result.records) == dumps(serial.records)

    def test_fault_axis_sweep(self):
        spec = make_spec(faults=FaultAxis("omission-rate", (0.0, 0.4)))
        serial = run_experiment(spec, workers=1)
        with WorkerFleet(2) as fleet:
            result = run_experiment(spec, fleet=fleet)
        assert dumps(result.records) == dumps(serial.records)

    def test_batched_engine_across_backends(self, backend):
        spec = make_spec(engine="batched", backend=backend,
                         ns=(16,), trials=2)
        serial = run_experiment(spec, workers=1)
        with WorkerFleet(2) as fleet:
            result = run_experiment(spec, fleet=fleet)
        assert dumps(result.records) == dumps(serial.records)

    def test_ensemble_engine(self):
        spec = make_spec(engine="ensemble", ns=(16,), trials=4)
        serial = run_experiment(spec, workers=1)
        with WorkerFleet(2) as fleet:
            result = run_experiment(spec, fleet=fleet)
        assert dumps(result.records) == dumps(serial.records)

    def test_store_resume_through_fleet(self, tmp_path):
        spec = make_spec()
        serial = run_experiment(spec, workers=1)
        store = ResultStore(tmp_path / "results.jsonl")
        with WorkerFleet(2) as fleet:
            first = run_experiment(spec, store=store, fleet=fleet)
            assert first.executed == len(first.records)
            again = run_experiment(
                spec, store=ResultStore(tmp_path / "results.jsonl"),
                fleet=fleet)
        assert again.executed == 0
        assert again.skipped == len(serial.records)
        assert dumps(again.records) == dumps(serial.records)


class TestWarmReuse:
    def test_second_sweep_reuses_workers_and_compile_cache(self):
        spec = make_spec(engine="batched", ns=(16,), trials=2)
        with WorkerFleet(2) as fleet:
            first = run_experiment(spec, fleet=fleet)
            pids = [w["pid"] for w in fleet.worker_stats() if w]
            # A different seed defeats the trial memo, so the second
            # sweep actually executes — on the same warm processes.
            second = run_experiment(make_spec(engine="batched", ns=(16,),
                                              trials=2, seed=11),
                                    fleet=fleet)
            stats = [w for w in fleet.worker_stats() if w]
        assert first.failures == [] and second.failures == []
        assert second.fleet["memo_hits"] == 0
        assert [w["pid"] for w in stats] == pids
        # Install compiles once per spec; trials then hit the keyed
        # compile memo in every worker that executed one.
        assert any(w["compile_cache"]["hits"] > 0 for w in stats)
        assert all(len(w["installed"]) == 2 for w in stats)

    def test_install_is_idempotent(self):
        spec = make_spec()
        with WorkerFleet(1) as fleet:
            first = fleet.install(spec)
            installs = fleet.stats.installs
            assert fleet.install(spec) == first
            assert fleet.stats.installs == installs


class TestMemoization:
    def test_repeat_sweep_served_from_memo(self):
        spec = make_spec()
        with WorkerFleet(2) as fleet:
            first = run_experiment(spec, fleet=fleet)
            tasks_after_first = fleet.stats.tasks
            second = run_experiment(spec, fleet=fleet)
            assert fleet.stats.tasks == tasks_after_first
        assert second.fleet["memo_hits"] == len(first.records)
        assert dumps(second.records) == dumps(first.records)

    def test_memo_keys_on_spec_hash(self):
        with WorkerFleet(1) as fleet:
            run_experiment(make_spec(), fleet=fleet)
            other = run_experiment(make_spec(seed=8), fleet=fleet)
        assert other.fleet["memo_hits"] == 0

    def test_served_records_are_copies(self):
        spec = make_spec(ns=(6,), trials=1)
        with WorkerFleet(1) as fleet:
            first = run_experiment(spec, fleet=fleet)
            first.records[0]["mutated"] = True
            second = run_experiment(spec, fleet=fleet)
        assert "mutated" not in second.records[0]


class TestTransport:
    def test_forced_shm_results_identical(self):
        spec = make_spec()
        serial = run_experiment(spec, workers=1)
        with WorkerFleet(2, shm_threshold=1) as fleet:
            result = run_experiment(spec, fleet=fleet)
        assert result.fleet["shm_results"] > 0
        assert result.fleet["shm_bytes"] > 0
        assert dumps(result.records) == dumps(serial.records)

    def test_ring_wraps_under_sustained_load(self):
        spec = make_spec(trials=6)
        serial = run_experiment(spec, workers=1)
        with WorkerFleet(1, ring_bytes=2048, shm_threshold=1) as fleet:
            result = run_experiment(spec, fleet=fleet)
        assert result.fleet["shm_results"] > 0
        assert dumps(result.records) == dumps(serial.records)

    def test_ring_disabled_falls_back_to_pipe(self):
        spec = make_spec()
        serial = run_experiment(spec, workers=1)
        with WorkerFleet(2, ring_bytes=0, shm_threshold=1) as fleet:
            assert fleet.shm_reason is not None
            result = run_experiment(spec, fleet=fleet)
        assert result.fleet["shm_results"] == 0
        assert result.fleet["pipe_results"] > 0
        assert dumps(result.records) == dumps(serial.records)


class TestSupervisionThroughFleet:
    def test_poison_trial_quarantined(self, marker_dir):
        spec = poison_spec({**HEALTHY, **poison("boom")},
                           policy=QUARANTINE)
        with WorkerFleet(2) as fleet:
            result = run_experiment(spec, fleet=fleet)
        assert [r["n"] for r in result.records] == [8]
        assert len(result.failures) == 1
        assert result.failures[0]["error_type"] == "RuntimeError"
        assert "boom" in result.failures[0]["message"]
        assert result.supervision["quarantined"] == 1

    def test_hung_trial_cut_at_timeout(self, marker_dir):
        policy = ExecutionPolicy(timeout_s=0.3, max_attempts=1,
                                 on_error="quarantine")
        spec = poison_spec({**HEALTHY, **poison("hang")}, policy=policy)
        with WorkerFleet(2) as fleet:
            result = run_experiment(spec, fleet=fleet)
        assert [r["n"] for r in result.records] == [8]
        assert result.failures[0]["error_type"] == "TrialTimeout"
        assert result.supervision["timeouts"] == 1

    def test_sigkilled_worker_respawns_warm(self, marker_dir, monkeypatch,
                                            tmp_path):
        policy = ExecutionPolicy(timeout_s=60.0, max_attempts=3,
                                 backoff=0.0, on_error="quarantine")
        spec = poison_spec({**HEALTHY, **poison("die")},
                           policy=policy, trials=2)
        with WorkerFleet(2) as fleet:
            result = run_experiment(spec, fleet=fleet)
            assert result.supervision["crashes"] == 1
            assert result.fleet["respawns"] == 1
            assert result.failures == []
            assert len(result.records) == 4
            # The respawned worker was re-armed with the installed spec:
            # every worker reports it, and the fleet keeps serving.
            assert all(len(w["installed"]) == 1
                       for w in fleet.worker_stats() if w)

        clean_dir = tmp_path / "clean"
        clean_dir.mkdir()
        (clean_dir / "die.fired").touch()
        monkeypatch.setenv(faulty.MARKER_DIR_ENV, str(clean_dir))
        clean = run_experiment(spec, workers=2)
        assert clean.supervision["crashes"] == 0
        assert dumps(result.records) == dumps(clean.records)

    def test_fleet_survives_failed_sweep(self, marker_dir):
        """A sweep full of failures leaves the fleet usable."""
        spec = poison_spec({**HEALTHY, **poison("boom")},
                           policy=QUARANTINE)
        healthy = make_spec()
        serial = run_experiment(healthy, workers=1)
        with WorkerFleet(2) as fleet:
            run_experiment(spec, fleet=fleet)
            after = run_experiment(healthy, fleet=fleet)
        assert dumps(after.records) == dumps(serial.records)

    def test_default_policy_error_raises(self):
        spec = poison_spec(poison("boom"), policy=ExecutionPolicy())
        from repro.exp.supervise import TrialExecutionError

        with WorkerFleet(1) as fleet:
            with pytest.raises(TrialExecutionError):
                run_experiment(spec, fleet=fleet)


class TestFleetReport:
    def test_payload_shape(self):
        report = fleet_report()
        assert report["start_method"] in ("fork", "forkserver", "spawn")
        assert isinstance(report["shared_memory"]["available"], bool)
        if report["shared_memory"]["available"]:
            assert report["shared_memory"]["reason"] is None
            assert shared_memory_reason() is None
        assert report["ring_bytes"] > 0
        assert report["shm_threshold_bytes"] > 0
        assert isinstance(report["numba"]["available"], bool)
        assert isinstance(report["numba"]["warm_kernels"], list)


class TestSharedFleet:
    def test_get_fleet_reuses_and_grows(self):
        try:
            fleet = get_fleet(1)
            assert get_fleet(1) is fleet
            bigger = get_fleet(2)
            assert bigger is not fleet
            assert bigger.size == 2
            # A smaller request keeps the larger warm fleet.
            assert get_fleet(1) is bigger
        finally:
            shutdown_fleet()

    def test_shutdown_closes(self):
        fleet = get_fleet(1)
        shutdown_fleet()
        assert fleet.closed
        with pytest.raises(RuntimeError):
            fleet.install(make_spec())

    def test_closed_fleet_rejects_runs(self):
        fleet = WorkerFleet(1)
        fleet.close()
        with pytest.raises(RuntimeError):
            run_experiment(make_spec(), fleet=fleet)
